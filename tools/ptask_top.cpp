// ptask_top -- live RED-metrics view of a running ptask_served daemon.
//
// Polls the daemon's `stats` and `metrics` endpoints and renders Rate /
// Errors / Duration at a glance: request throughput, error share, latency
// percentiles (p50/p90/p99 estimated from the log-bucket Prometheus
// histogram -- factor-of-two error bound, see docs/OBSERVABILITY.md),
// cache hit rate, and the per-phase latency breakdown
// (recv/parse/cache/schedule/certify/serialize/send), plus per-strategy
// and per-family request counts.
//
// Modes:
//   (default)           refreshing text dashboard every --interval-s seconds
//   --once              render a single frame and exit
//   --json              render the frame as one JSON object (machine
//                       readable; implies no screen clearing)
//   --spawn             self-host a server, issue a small request burst, and
//                       self-check the rendered numbers against the raw
//                       exposition -- the CTest entry; exits non-zero on any
//                       inconsistency
//   --metrics-out FILE  also dump the raw Prometheus exposition of the last
//                       poll (what CI feeds to tools/promlint.py)
//   --trace-out FILE    also dump a live Chrome/Perfetto trace drained from
//                       the daemon's tracer (`trace` endpoint)
//
// Usage:
//   ptask_top (--spawn | --port N [--host H]) [--interval-s S] [--once]
//       [--json] [--metrics-out FILE] [--trace-out FILE]

#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "ptask/fuzz/generator.hpp"
#include "ptask/obs/json.hpp"
#include "ptask/obs/prometheus.hpp"
#include "ptask/serve/client.hpp"
#include "ptask/serve/server.hpp"

namespace {

namespace obs = ptask::obs;
namespace serve = ptask::serve;

volatile std::sig_atomic_t g_stop = 0;
void handle_signal(int) { g_stop = 1; }

struct Options {
  std::string host = "127.0.0.1";
  int port = 0;
  bool spawn = false;
  double interval_s = 2.0;
  bool once = false;
  bool json = false;
  std::string metrics_out;
  std::string trace_out;
};

/// One phase (or per-strategy/per-family) latency row of the dashboard.
struct PhaseRow {
  std::string label;
  std::uint64_t count = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

/// Everything one poll of the daemon yields, already digested for display.
struct Frame {
  bool ok = false;
  double uptime_s = 0.0;
  std::uint64_t requests = 0;
  std::uint64_t responses_ok = 0;
  std::uint64_t errors = 0;
  std::uint64_t in_flight = 0;
  double hit_rate = -1.0;  ///< -1 = cache untouched
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_entries = 0;
  std::uint64_t latency_count = 0;
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;
  std::uint64_t queue_depth = 0;
  std::uint64_t queue_max = 0;
  std::uint64_t queue_enqueued = 0;
  std::uint64_t queue_rejected = 0;
  PhaseRow queue_wait;  ///< serve.queue.wait_us percentiles
  std::uint64_t batch_runs = 0;
  std::uint64_t batch_coalesced = 0;
  /// Per-bucket (non-cumulative) counts of serve.batch.size, non-empty
  /// buckets only: (inclusive upper bound, count in this bucket).
  std::vector<std::pair<double, std::uint64_t>> batch_sizes;
  std::vector<PhaseRow> phases;
  std::vector<std::pair<std::string, std::uint64_t>> strategies;
  std::vector<std::pair<std::string, std::uint64_t>> families;
  std::vector<std::pair<std::string, std::uint64_t>> error_codes;
  std::string exposition;  ///< raw Prometheus text of this poll
};

constexpr const char* kPhases[] = {"recv",    "parse",     "cache",
                                   "schedule", "certify",  "serialize",
                                   "send"};

/// Registry histogram name of a dashboard phase label.
std::string phase_metric(const std::string& label) {
  return "serve.phase." + label + "_us";
}

PhaseRow histogram_row(const std::string& label, std::string_view exposition,
                       const std::string& registry_name) {
  PhaseRow row;
  row.label = label;
  const obs::PromHistogram hist = obs::parse_prometheus_histogram(
      exposition, obs::prometheus_name(registry_name));
  if (hist.found && hist.count > 0) {
    row.count = hist.count;
    row.p50_us = obs::prometheus_percentile(hist, 0.5);
    row.p99_us = obs::prometheus_percentile(hist, 0.99);
  }
  return row;
}

/// One stats+metrics round trip, digested.  All percentiles come from the
/// Prometheus exposition (the same bytes --metrics-out dumps), so what the
/// dashboard shows is exactly what a scraper would compute.
Frame poll(serve::Client& client) {
  Frame frame;
  const std::string stats_payload = client.stats();
  frame.exposition = serve::response_metrics_text(client.metrics());

  const obs::json::Value document = obs::json::parse(stats_payload);
  const obs::json::Value* stats = document.find("stats");
  if (stats == nullptr) return frame;
  const auto number = [&](const char* key) -> double {
    const obs::json::Value* v = stats->find(key);
    return v != nullptr && v->is_number() ? v->number : 0.0;
  };
  frame.uptime_s = number("uptime_s");
  frame.requests = static_cast<std::uint64_t>(number("requests"));
  frame.responses_ok = static_cast<std::uint64_t>(number("responses_ok"));
  frame.in_flight = static_cast<std::uint64_t>(number("in_flight"));
  if (const obs::json::Value* cache = stats->find("cache")) {
    const auto cache_number = [&](const char* key) -> std::uint64_t {
      const obs::json::Value* v = cache->find(key);
      return v != nullptr && v->is_number()
                 ? static_cast<std::uint64_t>(v->number)
                 : 0;
    };
    frame.cache_hits = cache_number("hits");
    frame.cache_misses = cache_number("misses");
    frame.cache_entries = cache_number("entries");
    if (frame.cache_hits + frame.cache_misses > 0) {
      frame.hit_rate = static_cast<double>(frame.cache_hits) /
                       static_cast<double>(frame.cache_hits +
                                           frame.cache_misses);
    }
  }
  if (const obs::json::Value* queue = stats->find("queue")) {
    const auto queue_number = [&](const char* key) -> std::uint64_t {
      const obs::json::Value* v = queue->find(key);
      return v != nullptr && v->is_number()
                 ? static_cast<std::uint64_t>(v->number)
                 : 0;
    };
    frame.queue_depth = queue_number("depth");
    frame.queue_max = queue_number("max");
    frame.queue_enqueued = queue_number("enqueued");
    frame.queue_rejected = queue_number("rejected");
  }
  if (const obs::json::Value* batch = stats->find("batch")) {
    const auto batch_number = [&](const char* key) -> std::uint64_t {
      const obs::json::Value* v = batch->find(key);
      return v != nullptr && v->is_number()
                 ? static_cast<std::uint64_t>(v->number)
                 : 0;
    };
    frame.batch_runs = batch_number("runs");
    frame.batch_coalesced = batch_number("coalesced");
  }
  if (const obs::json::Value* errors = stats->find("errors")) {
    for (const auto& [code, value] : errors->object) {
      if (!value.is_number()) continue;
      const auto count = static_cast<std::uint64_t>(value.number);
      frame.errors += count;
      frame.error_codes.emplace_back(code, count);
    }
  }
  // Per-strategy / per-family request counters from the full registry dump.
  if (const obs::json::Value* counters = stats->find("counters")) {
    for (const auto& [name, value] : counters->object) {
      if (!value.is_number()) continue;
      constexpr std::string_view kStrategy = "serve.strategy.";
      constexpr std::string_view kFamily = "serve.family.";
      constexpr std::string_view kRequests = ".requests";
      if (name.size() > kStrategy.size() + kRequests.size() &&
          name.compare(0, kStrategy.size(), kStrategy) == 0 &&
          name.compare(name.size() - kRequests.size(), kRequests.size(),
                       kRequests) == 0) {
        frame.strategies.emplace_back(
            name.substr(kStrategy.size(),
                        name.size() - kStrategy.size() - kRequests.size()),
            static_cast<std::uint64_t>(value.number));
      }
      if (name.size() > kFamily.size() + kRequests.size() &&
          name.compare(0, kFamily.size(), kFamily) == 0 &&
          name.compare(name.size() - kRequests.size(), kRequests.size(),
                       kRequests) == 0) {
        frame.families.emplace_back(
            name.substr(kFamily.size(),
                        name.size() - kFamily.size() - kRequests.size()),
            static_cast<std::uint64_t>(value.number));
      }
    }
  }

  const obs::PromHistogram latency = obs::parse_prometheus_histogram(
      frame.exposition, obs::prometheus_name("serve.latency_us"));
  if (latency.found && latency.count > 0) {
    frame.latency_count = latency.count;
    frame.p50_us = obs::prometheus_percentile(latency, 0.5);
    frame.p90_us = obs::prometheus_percentile(latency, 0.9);
    frame.p99_us = obs::prometheus_percentile(latency, 0.99);
  }
  for (const char* phase : kPhases) {
    frame.phases.push_back(
        histogram_row(phase, frame.exposition, phase_metric(phase)));
  }
  frame.queue_wait =
      histogram_row("queue-wait", frame.exposition, "serve.queue.wait_us");
  // Batch-size distribution: de-cumulate the exposition buckets and keep
  // the non-empty ones (sizes are small integers, so the log buckets read
  // naturally as "<=1", "<=2", "<=4", ...).
  const obs::PromHistogram batch_hist = obs::parse_prometheus_histogram(
      frame.exposition, obs::prometheus_name("serve.batch.size"));
  if (batch_hist.found) {
    std::uint64_t previous = 0;
    for (const auto& [bound, cumulative] : batch_hist.buckets) {
      if (cumulative > previous) {
        // The +Inf overflow bucket is stored as -1 so the JSON frame stays
        // numeric; batch sizes are tiny, so it is empty in practice.
        frame.batch_sizes.emplace_back(std::isfinite(bound) ? bound : -1.0,
                                       cumulative - previous);
      }
      previous = cumulative;
    }
  }
  frame.ok = true;
  return frame;
}

std::string format_us(double us) {
  char buf[32];
  if (us >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fs", us / 1e6);
  } else if (us >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fms", us / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fus", us);
  }
  return buf;
}

void append_json_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

/// The --json frame: everything the text dashboard shows, machine readable.
std::string render_json(const Frame& frame, double rate_qps) {
  char buf[256];
  std::string out = "{";
  std::snprintf(buf, sizeof(buf),
                "\"uptime_s\":%.3f,\"requests\":%llu,\"responses_ok\":%llu,"
                "\"errors\":%llu,\"in_flight\":%llu,\"rate_qps\":%.3f",
                frame.uptime_s,
                static_cast<unsigned long long>(frame.requests),
                static_cast<unsigned long long>(frame.responses_ok),
                static_cast<unsigned long long>(frame.errors),
                static_cast<unsigned long long>(frame.in_flight), rate_qps);
  out += buf;
  if (frame.hit_rate >= 0) {
    std::snprintf(buf, sizeof(buf), ",\"cache_hit_rate\":%.6f",
                  frame.hit_rate);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                ",\"latency_us\":{\"count\":%llu,\"p50\":%.3f,\"p90\":%.3f,"
                "\"p99\":%.3f}",
                static_cast<unsigned long long>(frame.latency_count),
                frame.p50_us, frame.p90_us, frame.p99_us);
  out += buf;
  const double rejected_pct =
      frame.queue_enqueued + frame.queue_rejected > 0
          ? 100.0 * static_cast<double>(frame.queue_rejected) /
                static_cast<double>(frame.queue_enqueued +
                                    frame.queue_rejected)
          : 0.0;
  std::snprintf(buf, sizeof(buf),
                ",\"queue\":{\"depth\":%llu,\"max\":%llu,\"enqueued\":%llu,"
                "\"rejected\":%llu,\"rejected_pct\":%.3f,"
                "\"wait_us\":{\"count\":%llu,\"p50\":%.3f,\"p99\":%.3f}}",
                static_cast<unsigned long long>(frame.queue_depth),
                static_cast<unsigned long long>(frame.queue_max),
                static_cast<unsigned long long>(frame.queue_enqueued),
                static_cast<unsigned long long>(frame.queue_rejected),
                rejected_pct,
                static_cast<unsigned long long>(frame.queue_wait.count),
                frame.queue_wait.p50_us, frame.queue_wait.p99_us);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                ",\"batch\":{\"runs\":%llu,\"coalesced\":%llu,\"sizes\":[",
                static_cast<unsigned long long>(frame.batch_runs),
                static_cast<unsigned long long>(frame.batch_coalesced));
  out += buf;
  for (std::size_t i = 0; i < frame.batch_sizes.size(); ++i) {
    if (i != 0) out += ',';
    std::snprintf(buf, sizeof(buf), "{\"le\":%.0f,\"count\":%llu}",
                  frame.batch_sizes[i].first,
                  static_cast<unsigned long long>(frame.batch_sizes[i].second));
    out += buf;
  }
  out += "]}";
  out += ",\"phases\":{";
  bool first = true;
  for (const PhaseRow& row : frame.phases) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_json_escaped(out, row.label);
    std::snprintf(buf, sizeof(buf),
                  "\":{\"count\":%llu,\"p50_us\":%.3f,\"p99_us\":%.3f}",
                  static_cast<unsigned long long>(row.count), row.p50_us,
                  row.p99_us);
    out += buf;
  }
  out += '}';
  const auto map = [&](const char* key,
                       const std::vector<std::pair<std::string,
                                                   std::uint64_t>>& rows) {
    out += ",\"";
    out += key;
    out += "\":{";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (i != 0) out += ',';
      out += '"';
      append_json_escaped(out, rows[i].first);
      out += "\":" + std::to_string(rows[i].second);
    }
    out += '}';
  };
  map("strategies", frame.strategies);
  map("families", frame.families);
  map("error_codes", frame.error_codes);
  out += "}\n";
  return out;
}

void render_text(const Frame& frame, double rate_qps, const Options& options,
                 bool clear) {
  std::string out;
  char buf[256];
  if (clear) out += "\033[2J\033[H";  // refresh in place between polls
  std::snprintf(buf, sizeof(buf), "ptask_top -- %s:%d   uptime %.1fs\n",
                options.host.c_str(), options.port, frame.uptime_s);
  out += buf;
  const double error_pct =
      frame.requests > 0 ? 100.0 * static_cast<double>(frame.errors) /
                               static_cast<double>(frame.requests)
                         : 0.0;
  std::snprintf(buf, sizeof(buf),
                "requests %llu (%.1f qps)   errors %llu (%.1f%%)   "
                "in-flight %llu\n",
                static_cast<unsigned long long>(frame.requests), rate_qps,
                static_cast<unsigned long long>(frame.errors), error_pct,
                static_cast<unsigned long long>(frame.in_flight));
  out += buf;
  if (frame.hit_rate >= 0) {
    std::snprintf(buf, sizeof(buf),
                  "cache    hit rate %.1f%% (hits %llu, misses %llu, "
                  "entries %llu)\n",
                  100.0 * frame.hit_rate,
                  static_cast<unsigned long long>(frame.cache_hits),
                  static_cast<unsigned long long>(frame.cache_misses),
                  static_cast<unsigned long long>(frame.cache_entries));
    out += buf;
  }
  const double rejected_pct =
      frame.queue_enqueued + frame.queue_rejected > 0
          ? 100.0 * static_cast<double>(frame.queue_rejected) /
                static_cast<double>(frame.queue_enqueued +
                                    frame.queue_rejected)
          : 0.0;
  std::snprintf(buf, sizeof(buf),
                "queue    depth %llu/%llu   enqueued %llu   rejected %llu "
                "(%.1f%%)   wait p50~%s p99~%s\n",
                static_cast<unsigned long long>(frame.queue_depth),
                static_cast<unsigned long long>(frame.queue_max),
                static_cast<unsigned long long>(frame.queue_enqueued),
                static_cast<unsigned long long>(frame.queue_rejected),
                rejected_pct, format_us(frame.queue_wait.p50_us).c_str(),
                format_us(frame.queue_wait.p99_us).c_str());
  out += buf;
  std::snprintf(buf, sizeof(buf), "batch    runs %llu   coalesced %llu\n",
                static_cast<unsigned long long>(frame.batch_runs),
                static_cast<unsigned long long>(frame.batch_coalesced));
  out += buf;
  if (!frame.batch_sizes.empty()) {
    out += "  size       invocations\n";
    for (const auto& [bound, count] : frame.batch_sizes) {
      if (bound < 0) {
        std::snprintf(buf, sizeof(buf), "  >max      %12llu\n",
                      static_cast<unsigned long long>(count));
      } else {
        std::snprintf(buf, sizeof(buf), "  <=%-7.0f %12llu\n", bound,
                      static_cast<unsigned long long>(count));
      }
      out += buf;
    }
  }
  std::snprintf(buf, sizeof(buf),
                "latency  p50~%s  p90~%s  p99~%s  (count %llu)\n",
                format_us(frame.p50_us).c_str(),
                format_us(frame.p90_us).c_str(),
                format_us(frame.p99_us).c_str(),
                static_cast<unsigned long long>(frame.latency_count));
  out += buf;
  out += "phase          count      p50       p99\n";
  for (const PhaseRow& row : frame.phases) {
    std::snprintf(buf, sizeof(buf), "  %-10s %8llu %9s %9s\n",
                  row.label.c_str(),
                  static_cast<unsigned long long>(row.count),
                  format_us(row.p50_us).c_str(),
                  format_us(row.p99_us).c_str());
    out += buf;
  }
  const auto section = [&](const char* title,
                           const std::vector<std::pair<std::string,
                                                       std::uint64_t>>&
                               rows) {
    if (rows.empty()) return;
    out += title;
    out += '\n';
    for (const auto& [name, count] : rows) {
      std::snprintf(buf, sizeof(buf), "  %-18s %8llu\n", name.c_str(),
                    static_cast<unsigned long long>(count));
      out += buf;
    }
  };
  section("strategy       requests", frame.strategies);
  section("family         requests", frame.families);
  section("errors         count", frame.error_codes);
  std::fputs(out.c_str(), stdout);
  std::fflush(stdout);
}

/// --spawn self-check: the daemon, the exposition, and the dashboard must
/// agree with each other.  Returns the number of inconsistencies.
int self_check(const Frame& frame, std::uint64_t issued,
               std::uint64_t expected_errors) {
  int failures = 0;
  const auto check = [&](bool ok, const std::string& what) {
    if (!ok) {
      std::cerr << "ptask_top: SELF-CHECK FAILED: " << what << "\n";
      ++failures;
    }
  };
  check(frame.ok, "stats payload did not parse");
  check(frame.requests >= issued,
        "requests " + std::to_string(frame.requests) + " < issued " +
            std::to_string(issued));
  check(frame.errors == expected_errors,
        "errors " + std::to_string(frame.errors) + " != expected " +
            std::to_string(expected_errors));
  check(frame.latency_count > 0, "empty latency histogram");
  check(frame.p50_us <= frame.p90_us && frame.p90_us <= frame.p99_us,
        "percentiles not monotone");
  check(frame.hit_rate > 0, "repeated requests produced no cache hits");
  // Phase counts: every handled payload is parsed, and the cache phase also
  // runs on error paths, so both count at least the latency observations.
  for (const PhaseRow& row : frame.phases) {
    if (row.label == "parse" || row.label == "cache") {
      check(row.count >= frame.latency_count,
            "phase " + row.label + " count " + std::to_string(row.count) +
                " < latency count " + std::to_string(frame.latency_count));
    }
  }
  // Queue panel: every frame the burst issued was admitted through the
  // queue (the burst is far below the default bound, so none rejected),
  // and every admitted job observed its wait time when a worker took it.
  check(frame.queue_max > 0, "queue max not reported");
  check(frame.queue_enqueued >= issued,
        "queue enqueued " + std::to_string(frame.queue_enqueued) +
            " < issued " + std::to_string(issued));
  check(frame.queue_rejected == 0,
        "burst below the queue bound still saw rejections");
  check(frame.queue_wait.count >= issued,
        "queue wait histogram count " +
            std::to_string(frame.queue_wait.count) + " < issued " +
            std::to_string(issued));
  // Batch panel consistency: a batch run coalesces at least two requests,
  // and the size histogram tallies every scheduler invocation (singleton
  // groups included), so it covers at least the multi-request runs and is
  // non-empty once schedule requests flowed.
  check(frame.batch_coalesced >= 2 * frame.batch_runs,
        "batch coalesced < 2x batch runs");
  std::uint64_t batch_size_total = 0;
  for (const auto& [bound, count] : frame.batch_sizes) {
    batch_size_total += count;
  }
  check(batch_size_total >= frame.batch_runs,
        "batch size histogram total " + std::to_string(batch_size_total) +
            " < batch runs " + std::to_string(frame.batch_runs));
  check(batch_size_total > 0, "no scheduler invocations in size histogram");
  // The dashboard's percentiles must be reproducible from the raw
  // exposition bytes (the --metrics-out artifact).
  const obs::PromHistogram latency = obs::parse_prometheus_histogram(
      frame.exposition, obs::prometheus_name("serve.latency_us"));
  check(latency.found && latency.count == frame.latency_count,
        "exposition latency histogram disagrees with dashboard count");
  if (latency.found && latency.count > 0) {
    check(std::abs(obs::prometheus_percentile(latency, 0.99) -
                   frame.p99_us) < 1e-9,
          "exposition p99 disagrees with dashboard p99");
  }
  // The JSON frame must parse round-trip clean.
  try {
    obs::json::parse(render_json(frame, 0.0));
  } catch (const std::exception& e) {
    check(false, std::string("--json frame does not parse: ") + e.what());
  }
  return failures;
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " (--spawn | --port N [--host H]) [--interval-s S] [--once]"
               " [--json] [--metrics-out FILE] [--trace-out FILE]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--host") {
      options.host = next();
    } else if (arg == "--port") {
      options.port = std::atoi(next());
    } else if (arg == "--spawn") {
      options.spawn = true;
    } else if (arg == "--interval-s") {
      options.interval_s = std::atof(next());
    } else if (arg == "--once") {
      options.once = true;
    } else if (arg == "--json") {
      options.json = true;
    } else if (arg == "--metrics-out") {
      options.metrics_out = next();
    } else if (arg == "--trace-out") {
      options.trace_out = next();
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::cerr << "unknown argument '" << arg << "'\n";
      return usage(argv[0]);
    }
  }
  if (!options.spawn && options.port == 0) {
    std::cerr << "either --spawn or --port is required\n";
    return usage(argv[0]);
  }
  if (options.interval_s <= 0) options.interval_s = 2.0;

  // --spawn: self-hosted daemon plus a deterministic little burst so every
  // dashboard section has data (repeats for cache hits, one bad request for
  // the error column).
  std::unique_ptr<serve::Server> spawned;
  std::uint64_t issued = 0;
  std::uint64_t expected_errors = 0;
  if (options.spawn) {
    spawned = std::make_unique<serve::Server>(serve::ServerOptions{});
    spawned->start();
    options.port = spawned->port();
    serve::Client client;
    client.connect(options.host, options.port);
    std::uint64_t seed = 1;
    for (int unique = 0; unique < 3; ++unique) {
      ptask::fuzz::Instance instance = ptask::fuzz::random_instance(seed++);
      while (instance.graph.num_tasks() > 64) {
        instance = ptask::fuzz::random_instance(seed++);
      }
      serve::ScheduleRequest request;
      request.scheduler = "portfolio";
      request.total_cores = instance.total_cores;
      request.machine = instance.machine;
      request.graph = instance.graph;
      request.family = ptask::fuzz::to_string(instance.family);
      const std::string payload = serve::serialize_request(request);
      for (int repeat = 0; repeat < 3; ++repeat) {
        if (!serve::response_ok(client.call(payload))) {
          std::cerr << "ptask_top: spawn burst request failed\n";
          return 1;
        }
        ++issued;
      }
    }
    client.call("{broken json!");  // exactly one PTS001 for the error column
    ++expected_errors;
    options.once = true;  // spawn mode is one frame + self-check
  }

  serve::Client client;
  try {
    client.connect(options.host, options.port);
  } catch (const std::exception& e) {
    std::cerr << "ptask_top: " << e.what() << "\n";
    return 1;
  }

  std::signal(SIGINT, handle_signal);
  int exit_code = 0;
  bool first = true;
  std::uint64_t previous_requests = 0;
  auto previous_time = std::chrono::steady_clock::now();
  while (g_stop == 0) {
    Frame frame;
    try {
      frame = poll(client);
    } catch (const std::exception& e) {
      std::cerr << "ptask_top: poll failed: " << e.what() << "\n";
      exit_code = 1;
      break;
    }
    const auto now = std::chrono::steady_clock::now();
    // First frame: lifetime average from uptime; afterwards the window rate.
    double rate_qps = frame.uptime_s > 0
                          ? static_cast<double>(frame.requests) /
                                frame.uptime_s
                          : 0.0;
    if (!first) {
      const double window =
          std::chrono::duration<double>(now - previous_time).count();
      if (window > 0 && frame.requests >= previous_requests) {
        rate_qps =
            static_cast<double>(frame.requests - previous_requests) / window;
      }
    }
    previous_requests = frame.requests;
    previous_time = now;

    if (options.json) {
      std::fputs(render_json(frame, rate_qps).c_str(), stdout);
      std::fflush(stdout);
    } else {
      render_text(frame, rate_qps, options, /*clear=*/!options.once);
    }
    if (!options.metrics_out.empty()) {
      std::ofstream out(options.metrics_out);
      out << frame.exposition;
    }
    if (!options.trace_out.empty()) {
      const std::string trace_json =
          serve::response_trace_json(client.trace());
      if (!trace_json.empty()) {
        std::ofstream out(options.trace_out);
        out << trace_json << "\n";
      }
    }
    if (options.spawn) {
      exit_code = self_check(frame, issued, expected_errors) == 0 ? 0 : 1;
    }
    first = false;
    if (options.once) break;
    std::this_thread::sleep_for(
        std::chrono::duration<double>(options.interval_s));
  }

  if (spawned) spawned->stop();
  return exit_code;
}
