// ptask_loadgen -- fuzz-driven load/soak harness for ptask_served.
//
// Replays the fuzz generator's graph families (layered, series-parallel,
// random-dag, ode-solver, npb-multizone) as service traffic with
// configurable concurrency, family mix, and repeat ratio (the fraction of
// requests drawn from a fixed pool of unique instances -- high repeat
// ratios exercise the whole-schedule cache the way repetitive time-step
// graphs do in production).
//
// Verification modes:
//   --oracle    differential oracle: every served schedule must be
//               byte-identical to a direct in-process run of the same
//               registry scheduler on the same instance;
//   --faults F  protocol fault injection: fraction F of requests is
//               replaced by a malformed / invalid / oversized / truncated
//               frame, and the response (or clean disconnect) is checked
//               against the expected PTS00x error code.
//   --certify   sets "certify":true on every pool request, so the server
//               audits each schedule with the independent certifier before
//               caching it; the returned certificate_hash is re-derived
//               from the served schedule bytes and must match.
//
// Gates (non-zero exit when violated): any oracle mismatch, any unexpected
// response, --min-hit-rate R (server-side schedule cache hit rate over the
// run, from the stats endpoint), --min-overload N (at least N requests must
// have been answered with the PTS008 overload error -- the CI overload leg
// uses it to prove admission control actually kicked in), and --slo-p99-us N
// (server-side p99 request latency from the Prometheus `metrics` endpoint --
// computed with the same log-bucket interpolation ptask_top uses, so the
// gate and the dashboard agree within the documented factor-of-two bucket
// error).
//
// Arrival models:
//   default     closed loop: each of the --concurrency connections keeps
//               exactly one request in flight, so the offered load adapts to
//               the service rate and a slow server is never overdriven;
//   --qps N     open loop: requests are launched on a fixed global schedule
//               of N per second (request k of thread i fires at
//               t0 + (i + k*C)/N for C threads), independent of how fast
//               responses come back.  Latency is measured from the request's
//               *scheduled* send time, never from the actual send, so a
//               stalled server inflates the recorded tail instead of
//               silently pausing the load -- the standard correction for
//               coordinated omission.  Requests behind schedule are sent
//               immediately and never skipped.  PTS008 overload responses
//               are tallied separately (`overloaded`) and are not failures:
//               an open loop above capacity *should* see them.
//
// --bench-out FILE writes a BENCH_serve.json latency/hit-rate summary in
// the BENCH_*.json row schema (client-side p50/p90/p99 wall latencies as
// median_s seconds, a sustained-throughput row `serve.qps` (ok responses per
// wall second), and a cache hit-rate row; throughput and hit rate are tagged
// "direction":"up" so tools/check_bench_ceiling.py knows higher is better
// when diffing against the committed baseline).
//
// --spawn hosts the server in-process on an ephemeral port instead of
// connecting to an external daemon -- that is what the `serve_loadgen_smoke`
// CTest entry uses; CI's smoke job drives a real detached daemon instead.
// The spawned server's worker pool is sized to the host's cores (capped by
// --concurrency): the reactor multiplexes the connections, so workers size
// compute, not clients.  --max-queue bounds the spawned server's admission
// queue (for overload experiments without a daemon).
//
// --arrival-stream switches to online-session traffic: each "request" is a
// whole fuzz instance split into --batches timed arrival batches
// (fuzz::arrival_stream) and replayed as one submit + k-1 extend frames on
// an incremental session.  Every response is checked against a direct
// in-process IncrementalScheduler replay (the oracle is always on in this
// mode), so a green run certifies the served splice path byte-for-byte.
// --pace-us U sleeps U microseconds per unit of batch release-time gap,
// turning the stream's logical arrival times into wall-clock pacing
// (default 0: replay as fast as the daemon answers).
//
// Usage:
//   ptask_loadgen (--spawn | --port N [--host H]) [--requests N]
//       [--concurrency N] [--qps N] [--repeat-ratio R] [--seed S]
//       [--scheduler NAME] [--family NAME] [--max-tasks N] [--oracle]
//       [--faults F] [--arrival-stream] [--batches K] [--pace-us U]
//       [--min-hit-rate R] [--min-overload N] [--slo-p99-us N]
//       [--max-queue N] [--bench-out FILE] [--stats-out FILE] [--quiet]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ptask/analysis/certifier.hpp"
#include "ptask/cost/cost_model.hpp"
#include "ptask/fuzz/generator.hpp"
#include "ptask/fuzz/rng.hpp"
#include "ptask/obs/json.hpp"
#include "ptask/obs/metrics.hpp"
#include "ptask/obs/prometheus.hpp"
#include "ptask/sched/incremental.hpp"
#include "ptask/sched/registry.hpp"
#include "ptask/serve/client.hpp"
#include "ptask/serve/server.hpp"

namespace {

using ptask::serve::Client;
using ptask::serve::ScheduleRequest;

struct Options {
  std::string host = "127.0.0.1";
  int port = 0;
  bool spawn = false;
  int requests = 1000;
  int concurrency = 4;
  double qps = 0.0;  ///< open-loop arrival rate; 0 = closed loop
  double repeat_ratio = 0.7;
  std::uint64_t seed = 1;
  std::string scheduler = "portfolio";
  std::string family = "all";  // all | layered | series-parallel | ...
  int max_tasks = 400;
  bool oracle = false;
  bool certify = false;
  bool arrival_stream = false;
  int batches = 4;
  double pace_us = 0.0;
  double faults = 0.0;
  double min_hit_rate = -1.0;
  std::int64_t min_overload = -1;
  double slo_p99_us = -1.0;
  std::size_t max_queue = 1024;  ///< spawned server's admission bound
  std::string stats_out;
  std::string bench_out;
  bool quiet = false;
};

/// One unique traffic instance: the pre-serialized request plus (when the
/// oracle is on) the expected response bytes from a direct in-process run.
struct PoolEntry {
  std::string payload;          ///< serialized schedule request
  std::string expected;         ///< expected schedule bytes ("" = expect error)
  bool expect_error = false;
};

bool family_matches(const Options& options, ptask::fuzz::GraphFamily family) {
  return options.family == "all" ||
         options.family == ptask::fuzz::to_string(family);
}

/// Deterministically generates the pool of unique instances (seed-chained;
/// instances too large for --max-tasks or outside the family mix are
/// skipped, not shrunk, so every family keeps its natural shapes).
std::vector<ScheduleRequest> build_pool(const Options& options,
                                        std::size_t pool_size) {
  std::vector<ScheduleRequest> pool;
  pool.reserve(pool_size);
  std::uint64_t seed = options.seed;
  while (pool.size() < pool_size) {
    const ptask::fuzz::Instance instance = ptask::fuzz::random_instance(seed++);
    if (!family_matches(options, instance.family)) continue;
    if (instance.graph.num_tasks() > options.max_tasks) continue;
    ScheduleRequest request;
    request.scheduler = options.scheduler;
    request.total_cores = instance.total_cores;
    request.machine = instance.machine;
    request.graph = instance.graph;
    request.certify = options.certify;
    // Annotation only (excluded from the cache key): lets the server break
    // down serve.family.<f>.* metrics by graph family.
    request.family = ptask::fuzz::to_string(instance.family);
    pool.push_back(std::move(request));
  }
  return pool;
}

/// Direct in-process run of the same scheduler -- the differential oracle's
/// ground truth.
std::string local_schedule_bytes(const ScheduleRequest& request) {
  const ptask::cost::CostModel cost{ptask::arch::Machine(request.machine)};
  const std::unique_ptr<ptask::sched::Scheduler> scheduler =
      ptask::sched::SchedulerRegistry::instance().make(request.scheduler, cost);
  return ptask::serve::serialize_schedule(
      scheduler->run(request.graph, request.total_cores));
}

struct Tally {
  std::atomic<std::uint64_t> sent{0};
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> oracle_mismatches{0};
  std::atomic<std::uint64_t> certificate_mismatches{0};
  std::atomic<std::uint64_t> unexpected{0};
  std::atomic<std::uint64_t> overloaded{0};  ///< PTS008 responses
  std::atomic<std::uint64_t> fault_frames{0};
  std::atomic<std::uint64_t> reconnects{0};
  std::mutex log_mutex;
  /// Client-side wall latency (us) of every well-formed schedule round trip,
  /// merged per thread at loop exit (feeds --bench-out and the summary).
  std::mutex latency_mutex;
  std::vector<double> latencies_us;
};

void log_failure(Tally& tally, const std::string& message) {
  const std::lock_guard<std::mutex> lock(tally.log_mutex);
  std::cerr << "ptask_loadgen: " << message << "\n";
}

/// Sends one deliberately broken interaction and checks the daemon's
/// reaction.  Returns true when the connection must be re-established.
bool inject_fault(Client& client, ptask::fuzz::Rng& rng, Tally& tally) {
  namespace serve = ptask::serve;
  tally.fault_frames.fetch_add(1);
  const int kind = rng.uniform(0, 4);
  // Admission control runs before parsing, so under overload any queued
  // fault frame may legitimately come back PTS008 instead of its protocol
  // error; that is backpressure working, not a fault-handling bug.
  const auto overloaded = [&](const std::string& response) {
    if (serve::response_error_code(response) != serve::kErrOverloaded) {
      return false;
    }
    tally.overloaded.fetch_add(1);
    return true;
  };
  switch (kind) {
    case 0: {  // malformed JSON -> PTS001
      const std::string response = client.call("{broken json!");
      if (!overloaded(response) &&
          serve::response_error_code(response) != serve::kErrMalformedJson) {
        tally.unexpected.fetch_add(1);
        log_failure(tally, "malformed frame: expected PTS001, got: " + response);
      }
      return false;
    }
    case 1: {  // valid JSON, missing fields -> PTS002
      const std::string response = client.call("{\"scheduler\":\"layer\"}");
      if (!overloaded(response) &&
          serve::response_error_code(response) != serve::kErrBadRequest) {
        tally.unexpected.fetch_add(1);
        log_failure(tally, "bad request: expected PTS002, got: " + response);
      }
      return false;
    }
    case 2: {  // unknown scheduler -> PTS003
      const std::string response =
          client.call("{\"scheduler\":\"no-such-strategy\"}");
      if (!overloaded(response) &&
          serve::response_error_code(response) !=
              serve::kErrUnknownScheduler) {
        tally.unexpected.fetch_add(1);
        log_failure(tally,
                    "unknown scheduler: expected PTS003, got: " + response);
      }
      return false;
    }
    case 3: {  // oversized frame -> PTS005, then the server closes
      unsigned char header[4] = {0xff, 0xff, 0xff, 0xff};
      client.send_raw(std::string_view(
          reinterpret_cast<const char*>(header), sizeof(header)));
      const std::optional<std::string> response = client.read_response();
      if (!response.has_value() ||
          serve::response_error_code(*response) != serve::kErrTooLarge) {
        tally.unexpected.fetch_add(1);
        log_failure(tally, "oversized frame: expected PTS005 response");
      }
      return true;
    }
    default: {  // truncated frame, then hang up -> server must just cope
      const std::string garbage = "{\"type\":\"sched";
      client.send_raw(serve::encode_frame(
          garbage + std::string(64, 'x')).substr(0, garbage.size()));
      return true;
    }
  }
}

void client_loop(const Options& options, const std::vector<PoolEntry>& pool,
                 std::chrono::steady_clock::time_point t_start,
                 int thread_index, int request_count, Tally& tally) {
  namespace serve = ptask::serve;
  ptask::fuzz::Rng rng(options.seed ^ (0x9e3779b97f4a7c15ull *
                                       static_cast<std::uint64_t>(
                                           thread_index + 1)));
  Client client;
  client.connect(options.host, options.port);
  std::vector<double> latencies_us;
  latencies_us.reserve(static_cast<std::size_t>(request_count));

  for (int i = 0; i < request_count; ++i) {
    // Open loop: thread i's request k is *scheduled* at the global slot
    // (i + k*C)/qps past t_start, and latency is measured from that slot --
    // a request sent late (because the previous response stalled us) keeps
    // its original deadline, so server stalls surface in the tail instead
    // of silently thinning the load (coordinated omission).
    auto call_t0 = std::chrono::steady_clock::now();
    if (options.qps > 0.0) {
      const double offset_s =
          (static_cast<double>(thread_index) +
           static_cast<double>(i) * static_cast<double>(options.concurrency)) /
          options.qps;
      const auto scheduled =
          t_start + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(offset_s));
      std::this_thread::sleep_until(scheduled);  // no-op when behind
      call_t0 = scheduled;
    }
    try {
      if (options.faults > 0.0 && rng.chance(options.faults)) {
        if (inject_fault(client, rng, tally)) {
          client.connect(options.host, options.port);
          tally.reconnects.fetch_add(1);
        }
        continue;
      }
      const std::size_t index =
          static_cast<std::size_t>(rng.uniform(0, static_cast<int>(pool.size()) - 1));
      const PoolEntry& entry = pool[index];
      tally.sent.fetch_add(1);
      if (options.qps <= 0.0) call_t0 = std::chrono::steady_clock::now();
      const std::string response = client.call(entry.payload);
      latencies_us.push_back(
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - call_t0)
              .count());
      if (serve::response_error_code(response) == serve::kErrOverloaded) {
        // Backpressure, not a failure: the server shed load it could not
        // queue.  The oracle does not apply (nothing was scheduled).
        tally.overloaded.fetch_add(1);
        continue;
      }
      if (entry.expect_error) {
        if (serve::response_ok(response)) {
          tally.unexpected.fetch_add(1);
          log_failure(tally, "instance expected to fail scheduled fine");
        }
        continue;
      }
      if (!serve::response_ok(response)) {
        tally.unexpected.fetch_add(1);
        log_failure(tally, "request failed: " + response);
        continue;
      }
      tally.ok.fetch_add(1);
      if (!entry.expected.empty()) {
        const std::string served = serve::response_schedule_json(response);
        if (served != entry.expected) {
          tally.oracle_mismatches.fetch_add(1);
          log_failure(tally, "ORACLE MISMATCH (pool index " +
                                 std::to_string(index) + "): served bytes " +
                                 "differ from direct Pipeline run");
        }
      }
      if (options.certify) {
        // The server certified before caching; the hash it returns must be
        // the FNV-1a of exactly the schedule bytes it served.
        const std::string served = serve::response_schedule_json(response);
        const std::string hash = serve::response_certificate_hash(response);
        if (hash.empty() ||
            hash != ptask::analysis::hash_hex(ptask::analysis::fnv1a64(served))) {
          tally.certificate_mismatches.fetch_add(1);
          log_failure(tally, "CERTIFICATE MISMATCH (pool index " +
                                 std::to_string(index) + "): hash '" + hash +
                                 "' does not match served schedule bytes");
        }
      }
    } catch (const std::exception& e) {
      tally.unexpected.fetch_add(1);
      log_failure(tally, std::string("client error: ") + e.what());
      try {
        client.connect(options.host, options.port);
        tally.reconnects.fetch_add(1);
      } catch (const std::exception&) {
        break;  // server gone; remaining requests count as unexpected below
      }
    }
  }
  const std::lock_guard<std::mutex> lock(tally.latency_mutex);
  tally.latencies_us.insert(tally.latencies_us.end(), latencies_us.begin(),
                            latencies_us.end());
}

/// Replays one fuzz arrival stream as a submit + extend session against the
/// daemon, checking every served schedule byte-for-byte against a direct
/// in-process IncrementalScheduler replay of the same batches.
void replay_stream(const Options& options, Client& client,
                   std::uint64_t seed, Tally& tally,
                   std::vector<double>& latencies_us) {
  namespace serve = ptask::serve;
  const ptask::fuzz::ArrivalStream stream =
      ptask::fuzz::arrival_stream(seed, options.batches);
  if (stream.instance.graph.num_tasks() == 0 ||
      stream.instance.graph.num_tasks() > options.max_tasks) {
    return;  // outside the size envelope; skip, don't shrink
  }
  const ptask::cost::CostModel cost{
      ptask::arch::Machine(stream.instance.machine)};
  ptask::sched::IncrementalScheduler direct(cost);
  direct.reset(stream.initial, stream.instance.total_cores,
               stream.initial_release);

  serve::SubmitRequest submit;
  submit.total_cores = stream.instance.total_cores;
  submit.machine = stream.instance.machine;
  submit.graph = stream.initial;
  submit.release_time = stream.initial_release;
  submit.family = ptask::fuzz::to_string(stream.instance.family);

  const auto timed_call = [&](const std::string& payload) {
    tally.sent.fetch_add(1);
    const auto call_t0 = std::chrono::steady_clock::now();
    const std::string response = client.call(payload);
    latencies_us.push_back(std::chrono::duration<double, std::micro>(
                               std::chrono::steady_clock::now() - call_t0)
                               .count());
    return response;
  };

  const std::string submitted = timed_call(serve::serialize_submit(submit));
  if (!serve::response_ok(submitted)) {
    tally.unexpected.fetch_add(1);
    log_failure(tally, "submit failed: " + submitted);
    return;
  }
  tally.ok.fetch_add(1);
  std::string session;
  {
    const ptask::obs::json::Value document =
        ptask::obs::json::parse(submitted);
    if (const auto* id = document.find("session")) session = id->string;
  }
  if (serve::response_schedule_json(submitted) !=
      serve::serialize_schedule(direct.current())) {
    tally.oracle_mismatches.fetch_add(1);
    log_failure(tally, "ORACLE MISMATCH (stream seed " +
                           std::to_string(seed) + ", submit)");
  }

  double last_release = stream.initial_release;
  for (std::size_t b = 0; b < stream.deltas.size(); ++b) {
    const ptask::sched::GraphDelta& delta = stream.deltas[b];
    if (options.pace_us > 0.0) {
      const double gap_us = (delta.release_time - last_release) *
                            options.pace_us;
      std::this_thread::sleep_for(std::chrono::duration<double, std::micro>(
          gap_us > 0.0 ? gap_us : 0.0));
    }
    last_release = delta.release_time;
    serve::ExtendRequest extend;
    extend.session = session;
    extend.delta = delta;
    extend.family = submit.family;
    const std::string response =
        timed_call(serve::serialize_extend(extend));
    if (!serve::response_ok(response)) {
      tally.unexpected.fetch_add(1);
      log_failure(tally, "extend failed: " + response);
      break;
    }
    tally.ok.fetch_add(1);
    if (serve::response_schedule_json(response) !=
        serve::serialize_schedule(direct.extend(delta))) {
      tally.oracle_mismatches.fetch_add(1);
      log_failure(tally, "ORACLE MISMATCH (stream seed " +
                             std::to_string(seed) + ", batch " +
                             std::to_string(b + 1) + "/" +
                             std::to_string(stream.batches() - 1) + ")");
    }
  }

  serve::CloseRequest close;
  close.session = session;
  if (!serve::response_ok(client.call(serve::serialize_close(close)))) {
    tally.unexpected.fetch_add(1);
    log_failure(tally, "close failed for session " + session);
  }
}

void stream_loop(const Options& options, std::uint64_t first_seed,
                 int stream_count, Tally& tally) {
  Client client;
  client.connect(options.host, options.port);
  std::vector<double> latencies_us;
  for (int s = 0; s < stream_count; ++s) {
    try {
      replay_stream(options, client, first_seed + static_cast<std::uint64_t>(s),
                    tally, latencies_us);
    } catch (const std::exception& e) {
      tally.unexpected.fetch_add(1);
      log_failure(tally, std::string("stream error: ") + e.what());
      try {
        client.connect(options.host, options.port);
        tally.reconnects.fetch_add(1);
      } catch (const std::exception&) {
        break;
      }
    }
  }
  const std::lock_guard<std::mutex> lock(tally.latency_mutex);
  tally.latencies_us.insert(tally.latencies_us.end(), latencies_us.begin(),
                            latencies_us.end());
}

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " (--spawn | --port N [--host H]) [--requests N] [--concurrency N]"
         " [--qps N] [--repeat-ratio R] [--seed S] [--scheduler NAME]"
         " [--family NAME] [--max-tasks N] [--oracle] [--certify]"
         " [--faults F] [--arrival-stream] [--batches K] [--pace-us U]"
         " [--min-hit-rate R] [--min-overload N] [--slo-p99-us N]"
         " [--max-queue N] [--bench-out FILE] [--stats-out FILE] [--quiet]\n";
  return 2;
}

/// BENCH_serve.json: client latency percentiles, sustained throughput, and
/// the cache hit rate in the BENCH_*.json row schema
/// (name/samples/iterations/median_s/p90_s), so tools/check_bench_ceiling.py
/// can diff runs.  Latency rows carry the percentile in median_s as seconds;
/// the serve.qps row abuses median_s as ok-responses-per-second and the
/// hit-rate row as a ratio in [0, 1] -- both tagged "direction":"up"
/// (higher is better).
std::string render_bench_serve_json(std::vector<double> latencies_us,
                                    double qps, double hit_rate) {
  const std::size_t n = latencies_us.size();
  std::string out = "{\"benchmarks\":[";
  char buf[160];
  const auto row = [&](const char* name, double median_s, double p90_s,
                       const char* direction) {
    if (out.back() == '}') out += ",";
    std::snprintf(buf, sizeof(buf),
                  "\n  {\"name\":\"%s\",\"samples\":%zu,\"iterations\":%zu,"
                  "\"median_s\":%.9g,\"p90_s\":%.9g%s%s%s}",
                  name, n, n, median_s, p90_s,
                  direction != nullptr ? ",\"direction\":\"" : "",
                  direction != nullptr ? direction : "",
                  direction != nullptr ? "\"" : "");
    out += buf;
  };
  const auto pct = [&](double q) {
    return ptask::obs::percentile_nearest_rank(latencies_us, q) * 1e-6;
  };
  if (n > 0) {
    row("LG_ServeLatency/p50", pct(0.5), pct(0.9), nullptr);
    row("LG_ServeLatency/p90", pct(0.9), pct(0.99), nullptr);
    row("LG_ServeLatency/p99", pct(0.99), pct(0.99), nullptr);
  }
  if (qps >= 0) {
    row("serve.qps", qps, qps, "up");
  }
  if (hit_rate >= 0) {
    row("LG_CacheHitRate", hit_rate, hit_rate, "up");
  }
  out += "\n]}\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--host") {
      options.host = next();
    } else if (arg == "--port") {
      options.port = std::atoi(next());
    } else if (arg == "--spawn") {
      options.spawn = true;
    } else if (arg == "--requests") {
      options.requests = std::atoi(next());
    } else if (arg == "--concurrency") {
      options.concurrency = std::atoi(next());
    } else if (arg == "--qps") {
      options.qps = std::atof(next());
    } else if (arg == "--repeat-ratio") {
      options.repeat_ratio = std::atof(next());
    } else if (arg == "--seed") {
      options.seed = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--scheduler") {
      options.scheduler = next();
    } else if (arg == "--family") {
      options.family = next();
    } else if (arg == "--max-tasks") {
      options.max_tasks = std::atoi(next());
    } else if (arg == "--oracle") {
      options.oracle = true;
    } else if (arg == "--certify") {
      options.certify = true;
    } else if (arg == "--arrival-stream") {
      options.arrival_stream = true;
    } else if (arg == "--batches") {
      options.batches = std::atoi(next());
    } else if (arg == "--pace-us") {
      options.pace_us = std::atof(next());
    } else if (arg == "--faults") {
      options.faults = std::atof(next());
    } else if (arg == "--min-hit-rate") {
      options.min_hit_rate = std::atof(next());
    } else if (arg == "--min-overload") {
      options.min_overload = std::atoll(next());
    } else if (arg == "--max-queue") {
      options.max_queue = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--slo-p99-us") {
      options.slo_p99_us = std::atof(next());
    } else if (arg == "--bench-out") {
      options.bench_out = next();
    } else if (arg == "--stats-out") {
      options.stats_out = next();
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::cerr << "unknown argument '" << arg << "'\n";
      return usage(argv[0]);
    }
  }
  if (!options.spawn && options.port == 0) {
    std::cerr << "either --spawn or --port is required\n";
    return usage(argv[0]);
  }
  if (options.requests < 1 || options.concurrency < 1 ||
      options.repeat_ratio < 0.0 || options.repeat_ratio >= 1.0) {
    std::cerr << "invalid --requests/--concurrency/--repeat-ratio\n";
    return usage(argv[0]);
  }
  if (options.qps < 0.0 ||
      (options.qps > 0.0 && options.arrival_stream)) {
    std::cerr << "invalid --qps (must be > 0; not available with "
                 "--arrival-stream)\n";
    return usage(argv[0]);
  }
  if (options.batches < 1) {
    std::cerr << "invalid --batches\n";
    return usage(argv[0]);
  }

  // Optional in-process server (CTest smoke / ad-hoc runs without a daemon).
  std::unique_ptr<ptask::serve::Server> spawned;
  if (options.spawn) {
    ptask::serve::ServerOptions server_options;
    // The reactor multiplexes all connections, so the worker pool sizes
    // compute: one worker per core (capped by the client count) -- more
    // would just thrash the scheduler-bound CPUs.
    const int cores = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
    server_options.num_workers = std::min(options.concurrency, cores);
    server_options.max_queue = options.max_queue;
    spawned = std::make_unique<ptask::serve::Server>(server_options);
    spawned->start();
    options.port = spawned->port();
    if (!options.quiet) {
      std::cout << "ptask_loadgen: spawned in-process server on port "
                << options.port << "\n";
    }
  }

  // The unique-instance pool: repeat-ratio R over N requests means the pool
  // holds ~N*(1-R) unique instances, so the server-side cache sees at least
  // an R hit rate once warm.  Arrival-stream mode builds no pool: each
  // "request" is a whole stream generated from its own seed.
  std::vector<PoolEntry> pool;
  if (!options.arrival_stream) {
    const auto pool_size = static_cast<std::size_t>(std::max(
        1.0,
        static_cast<double>(options.requests) * (1.0 - options.repeat_ratio)));
    const std::vector<ScheduleRequest> requests =
        build_pool(options, pool_size);
    pool.resize(requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
      pool[i].payload = ptask::serve::serialize_request(requests[i]);
      if (options.oracle) {
        try {
          pool[i].expected = local_schedule_bytes(requests[i]);
        } catch (const std::exception&) {
          pool[i].expect_error = true;
        }
      }
    }
  }
  if (!options.quiet) {
    if (options.arrival_stream) {
      std::cout << "ptask_loadgen: " << options.requests
                << " arrival streams x " << options.batches
                << " batches, concurrency " << options.concurrency
                << ", oracle on (always, in stream mode)" << "\n";
    } else {
      std::cout << "ptask_loadgen: " << options.requests << " requests, "
                << pool.size() << " unique instances, concurrency "
                << options.concurrency << ", scheduler " << options.scheduler
                << (options.oracle ? ", oracle on" : "")
                << (options.certify ? ", certify on" : "")
                << (options.faults > 0.0 ? ", protocol faults on" : "")
                << "\n";
    }
  }

  Tally tally;
  const auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(options.concurrency));
    const int per_thread = options.requests / options.concurrency;
    const int remainder = options.requests % options.concurrency;
    std::uint64_t first_seed = options.seed;
    for (int t = 0; t < options.concurrency; ++t) {
      const int count = per_thread + (t < remainder ? 1 : 0);
      if (options.arrival_stream) {
        threads.emplace_back([&, first_seed, count] {
          stream_loop(options, first_seed, count, tally);
        });
        first_seed += static_cast<std::uint64_t>(count);
      } else {
        threads.emplace_back([&, t, count] {
          client_loop(options, pool, t0, t, count, tally);
        });
      }
    }
    for (std::thread& thread : threads) thread.join();
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // Pull the server's stats for the hit-rate gate and the artifact, and the
  // Prometheus exposition for the p99 SLO gate.
  std::string stats_json;
  double hit_rate = -1.0;
  double server_p99_us = -1.0;
  try {
    Client client;
    client.connect(options.host, options.port);
    stats_json = client.stats();
    const ptask::obs::json::Value document =
        ptask::obs::json::parse(stats_json);
    if (const auto* stats = document.find("stats")) {
      if (const auto* cache = stats->find("cache")) {
        const auto* hits = cache->find("hits");
        const auto* misses = cache->find("misses");
        if (hits != nullptr && misses != nullptr &&
            hits->number + misses->number > 0) {
          hit_rate = hits->number / (hits->number + misses->number);
        }
      }
    }
    if (options.slo_p99_us >= 0.0) {
      const std::string exposition =
          ptask::serve::response_metrics_text(client.metrics());
      const ptask::obs::PromHistogram latency =
          ptask::obs::parse_prometheus_histogram(exposition,
                                                 "ptask_serve_latency_us");
      if (latency.found && latency.count > 0) {
        server_p99_us = ptask::obs::prometheus_percentile(latency, 0.99);
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "ptask_loadgen: stats fetch failed: " << e.what() << "\n";
  }
  if (!options.stats_out.empty() && !stats_json.empty()) {
    std::ofstream out(options.stats_out);
    out << stats_json << "\n";
  }

  std::vector<double> latencies_us;
  {
    const std::lock_guard<std::mutex> lock(tally.latency_mutex);
    latencies_us = std::move(tally.latencies_us);
  }
  // Sustained throughput: *successful* responses per wall second -- PTS008
  // rejections are fast, so counting them would let an overloaded server
  // look faster than a healthy one.
  const double achieved_qps =
      seconds > 0 ? static_cast<double>(tally.ok.load()) / seconds : 0.0;
  if (!options.bench_out.empty()) {
    std::ofstream out(options.bench_out);
    out << render_bench_serve_json(latencies_us, achieved_qps, hit_rate);
  }

  const std::uint64_t sent = tally.sent.load();
  if (!options.quiet) {
    std::cout << "ptask_loadgen: " << sent << " schedule requests ("
              << tally.fault_frames.load() << " injected fault frames, "
              << tally.reconnects.load() << " reconnects) in " << seconds
              << "s (" << achieved_qps << " ok-qps";
    if (options.qps > 0.0) {
      std::cout << ", offered " << options.qps << " qps open-loop";
    }
    std::cout << ")\n";
    std::cout << "ptask_loadgen: ok=" << tally.ok.load()
              << " oracle_mismatches=" << tally.oracle_mismatches.load()
              << " certificate_mismatches="
              << tally.certificate_mismatches.load()
              << " unexpected=" << tally.unexpected.load()
              << " overloaded=" << tally.overloaded.load();
    if (hit_rate >= 0) std::cout << " cache_hit_rate=" << hit_rate;
    std::cout << "\n";
    if (!latencies_us.empty()) {
      std::cout << "ptask_loadgen: client latency_us p50="
                << ptask::obs::percentile_nearest_rank(latencies_us, 0.5)
                << " p90="
                << ptask::obs::percentile_nearest_rank(latencies_us, 0.9)
                << " p99="
                << ptask::obs::percentile_nearest_rank(latencies_us, 0.99);
      if (server_p99_us >= 0) std::cout << " server_p99~=" << server_p99_us;
      std::cout << "\n";
    }
  }

  if (spawned) spawned->stop();

  bool failed = false;
  if (tally.oracle_mismatches.load() != 0 ||
      tally.certificate_mismatches.load() != 0 ||
      tally.unexpected.load() != 0) {
    failed = true;
  }
  if (options.min_hit_rate >= 0.0 && hit_rate < options.min_hit_rate) {
    std::cerr << "ptask_loadgen: cache hit rate " << hit_rate
              << " below required " << options.min_hit_rate << "\n";
    failed = true;
  }
  if (options.min_overload >= 0 &&
      tally.overloaded.load() < static_cast<std::uint64_t>(options.min_overload)) {
    std::cerr << "ptask_loadgen: " << tally.overloaded.load()
              << " PTS008 responses, expected at least "
              << options.min_overload
              << " (admission control never engaged)\n";
    failed = true;
  }
  if (options.slo_p99_us >= 0.0) {
    if (server_p99_us < 0.0) {
      std::cerr << "ptask_loadgen: --slo-p99-us set but no server latency "
                   "histogram in the metrics exposition\n";
      failed = true;
    } else if (server_p99_us > options.slo_p99_us) {
      std::cerr << "ptask_loadgen: server p99 latency ~" << server_p99_us
                << "us violates SLO " << options.slo_p99_us << "us\n";
      failed = true;
    }
  }
  return failed ? 1 : 0;
}
