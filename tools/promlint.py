#!/usr/bin/env python3
"""Linter for Prometheus text exposition format 0.0.4 (stdlib only).

Validates the `metrics` endpoint output of ptask_served (and the
--metrics-out snapshots) the way a real scrape pipeline would:

  * every non-comment line is a well-formed sample
    `name[{labels}] value [timestamp]` with a legal metric name
    ([a-zA-Z_:][a-zA-Z0-9_:]*), legal label names, correctly escaped label
    values, and a float-parseable value;
  * HELP/TYPE comment lines are well-formed, TYPE precedes the metric's
    first sample, and no metric has two TYPE lines;
  * TYPE counter metrics only emit `<name>_total` samples;
  * TYPE histogram metrics are structurally sound: bucket `le` bounds are
    floats and strictly increasing, cumulative counts are monotone
    non-decreasing, the mandatory `le="+Inf"` bucket is present and equals
    `<name>_count`, and `<name>_sum` exists.

Usage:  promlint.py FILE [FILE ...]     (or `-` for stdin)
Exits 1 with one `file:line: message` per violation.
"""

import math
import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# name, optional {labels}, value, optional timestamp
SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?\s*$")
LABEL = re.compile(
    r'\s*(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*'
    r'"(?P<value>(?:[^"\\]|\\.)*)"\s*(?:,|$)')
SUFFIXES = ("_bucket", "_sum", "_count", "_total")


def base_name(name: str) -> str:
    """Metric family name of a sample (strips histogram/counter suffixes)."""
    for suffix in SUFFIXES:
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def parse_value(text: str):
    if text in ("+Inf", "Inf"):
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        return None


def lint(path: str, text: str) -> list:
    errors = []
    types = {}          # family -> declared TYPE
    type_line = {}      # family -> line of the TYPE declaration
    sampled = set()     # families that already emitted a sample
    # family -> list of (le, cumulative count, line)
    buckets = {}
    sums = set()
    counts = {}

    def err(line_number, message):
        errors.append(f"{path}:{line_number}: {message}")

    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] in ("HELP", "TYPE"):
                if len(parts) < 3 or not METRIC_NAME.match(parts[2]):
                    err(line_number, f"malformed {parts[1]} line")
                    continue
                if parts[1] == "TYPE":
                    if len(parts) < 4 or parts[3] not in (
                            "counter", "gauge", "histogram", "summary",
                            "untyped"):
                        err(line_number, "TYPE line missing a valid type")
                        continue
                    family = parts[2]
                    if family in types:
                        err(line_number,
                            f"second TYPE line for '{family}' (first at "
                            f"line {type_line[family]})")
                    if family in sampled:
                        err(line_number,
                            f"TYPE line for '{family}' after its samples")
                    types[family] = parts[3]
                    type_line[family] = line_number
            # other comments are free-form
            continue

        match = SAMPLE.match(line)
        if not match:
            err(line_number, f"unparseable sample line: {line!r}")
            continue
        name = match.group("name")
        value = parse_value(match.group("value"))
        if value is None:
            err(line_number, f"unparseable value {match.group('value')!r}")
            continue

        labels = {}
        raw_labels = match.group("labels")
        if raw_labels is not None:
            position = 0
            while position < len(raw_labels):
                label = LABEL.match(raw_labels, position)
                if not label:
                    err(line_number,
                        f"malformed labels: {{{raw_labels}}}")
                    break
                labels[label.group("name")] = label.group("value")
                position = label.end()

        family = base_name(name)
        sampled.add(family)
        sampled.add(name)
        # Counters may be declared either as `TYPE foo counter` (OpenMetrics
        # style) or `TYPE foo_total counter` (classic 0.0.4, what the ptask
        # renderer emits); accept both.
        declared = types.get(family) or types.get(name)

        if declared == "counter" and not name.endswith("_total"):
            err(line_number,
                f"counter family '{family}' sample '{name}' lacks _total")
        if declared == "histogram":
            if name == family + "_bucket":
                le_text = labels.get("le")
                le = parse_value(le_text) if le_text is not None else None
                if le is None:
                    err(line_number, "histogram bucket without a float 'le'")
                else:
                    buckets.setdefault(family, []).append(
                        (le, value, line_number))
            elif name == family + "_sum":
                sums.add(family)
            elif name == family + "_count":
                counts[family] = (value, line_number)

    for family, declared in types.items():
        if declared != "histogram":
            continue
        rows = buckets.get(family, [])
        if not rows:
            err(type_line[family], f"histogram '{family}' has no buckets")
            continue
        for (le_a, count_a, _), (le_b, count_b, line_b) in zip(rows, rows[1:]):
            if not le_b > le_a:
                err(line_b, f"histogram '{family}' bucket bounds not "
                            f"strictly increasing ({le_a} -> {le_b})")
            if count_b < count_a:
                err(line_b, f"histogram '{family}' cumulative counts "
                            f"decrease ({count_a} -> {count_b})")
        if not math.isinf(rows[-1][0]):
            err(rows[-1][2], f"histogram '{family}' missing le=\"+Inf\"")
        if family not in counts:
            err(type_line[family], f"histogram '{family}' missing _count")
        elif math.isinf(rows[-1][0]) and rows[-1][1] != counts[family][0]:
            err(counts[family][1],
                f"histogram '{family}' +Inf bucket {rows[-1][1]:g} != "
                f"_count {counts[family][0]:g}")
        if family not in sums:
            err(type_line[family], f"histogram '{family}' missing _sum")

    return errors


def main() -> int:
    paths = sys.argv[1:]
    if not paths:
        print("usage: promlint.py FILE [FILE ...]  (or - for stdin)",
              file=sys.stderr)
        return 2
    failures = []
    for path in paths:
        if path == "-":
            failures += lint("<stdin>", sys.stdin.read())
        else:
            with open(path, encoding="utf-8") as f:
                failures += lint(path, f.read())
    for failure in failures:
        print(failure, file=sys.stderr)
    if not failures:
        print(f"promlint: {len(paths)} file(s) clean")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
