// ptask_lint: static analysis driver for the built-in specification
// programs (ODE solvers, NPB multi-zone benchmarks), serve-protocol request
// files, and ad-hoc graphs.
//
// Exit codes: 0 = no findings at the failure threshold, 1 = findings,
// 2 = usage error.

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "ptask/analysis/analyzer.hpp"
#include "ptask/analysis/certifier.hpp"
#include "ptask/arch/machine.hpp"
#include "ptask/core/graph_algorithms.hpp"
#include "ptask/cost/cost_model.hpp"
#include "ptask/npb/multizone.hpp"
#include "ptask/ode/graph_gen.hpp"
#include "ptask/sched/pipeline.hpp"
#include "ptask/sched/registry.hpp"
#include "ptask/sched/schedule.hpp"
#include "ptask/serve/protocol.hpp"

namespace {

using namespace ptask;

struct Options {
  std::vector<std::string> programs;  // empty = all
  std::vector<std::string> requests;  // serve-protocol request JSON files
  int steps = 2;
  std::string machine = "chic";
  std::string scheduler = "layer";
  int cores = 16;
  bool schedule = false;
  bool certify = false;
  std::string certificate_out;  // write the first certificate's JSON here
  bool json = false;
  bool warnings_as_errors = false;
};

const std::vector<std::string>& all_programs() {
  static const std::vector<std::string> names = {
      "epol", "irk", "diirk", "pab", "pabm", "epol-spec", "sp-mz", "bt-mz"};
  return names;
}

void usage(std::ostream& os) {
  os << "usage: ptask_lint [options]\n"
        "  --program NAME   program to lint: epol|irk|diirk|pab|pabm|\n"
        "                   epol-spec|sp-mz|bt-mz|all (default: all);\n"
        "                   may be repeated\n"
        "  --steps N        time steps to unroll per program (default: 2)\n"
        "  --machine NAME   machine preset: chic|juropa|altix (default: chic)\n"
        "  --cores N        symbolic core count P for cost checks and\n"
        "                   scheduling (default: 16)\n"
        "  --schedule       also run the selected scheduler and the schedule\n"
        "                   lints (PTA040/041, PTA050/051, PTA060/061)\n"
        "  --certify        additionally audit every produced schedule with\n"
        "                   the independent certifier (PTC001..PTC006);\n"
        "                   implies --schedule\n"
        "  --certificate-out FILE  write the first schedule's certificate as\n"
        "                   machine-checkable JSON (requires --certify)\n"
        "  --request FILE   lint a serve-protocol \"schedule\" request JSON\n"
        "                   file (the exact bytes ptask_served accepts);\n"
        "                   uses the request's own scheduler/cores/machine;\n"
        "                   may be repeated; suppresses the built-in\n"
        "                   programs unless --program is also given\n"
        "  --scheduler NAME scheduling strategy for --schedule, from the\n"
        "                   registry: layer|cpa|mcpa|cpr|dp|portfolio\n"
        "                   (default: layer)\n"
        "  --json           JSON output instead of text\n"
        "  --warnings-as-errors  exit 1 on warnings too\n"
        "  --codes          list all diagnostic codes and exit\n"
        "  --help           this message\n"
        "environment:\n"
        "  PTASK_SCHED_PARALLEL_LAYERS=N  schedule independent layers on N\n"
        "                   threads (layer strategy; same output)\n";
}

void print_codes() {
  for (const std::string_view code : analysis::all_codes()) {
    std::cout << code << "  " << analysis::describe(code) << "\n";
  }
}

/// Builds the flattened, marker-enclosed program graph of one built-in
/// specification program.
core::TaskGraph build_graph(const std::string& name, int steps) {
  core::TaskGraph step;
  if (name == "sp-mz" || name == "bt-mz") {
    const npb::MzSolver solver =
        name == "sp-mz" ? npb::MzSolver::SP : npb::MzSolver::BT;
    step = npb::step_graph(npb::make_problem(solver, 'S'));
  } else {
    ode::SolverGraphSpec spec;
    spec.n = std::size_t{1} << 12;
    spec.stages = 4;
    spec.iterations = 2;
    if (name == "epol") spec.method = ode::Method::EPOL;
    else if (name == "irk") spec.method = ode::Method::IRK;
    else if (name == "diirk") spec.method = ode::Method::DIIRK;
    else if (name == "pab") spec.method = ode::Method::PAB;
    else spec.method = ode::Method::PABM;
    step = spec.step_graph();
  }
  core::TaskGraph program = core::repeat_graph(step, steps);
  program.add_start_stop_markers();
  return program;
}

/// PTASK_SCHED_PARALLEL_LAYERS=N (N > 1) schedules independent layers on N
/// threads in the layer pipeline; the output is bit-identical either way
/// (LayerSchedulerOptions::parallel_layers contract).
int env_parallel_layers() {
  if (const char* env = std::getenv("PTASK_SCHED_PARALLEL_LAYERS")) {
    const int n = std::atoi(env);
    if (n > 1) return n;
  }
  return 1;
}

/// Schedules `graph` with the registry strategy named by `scheduler_name`
/// and merges the schedule lints: the canonical-schedule lint (native
/// representation) plus, for layered strategies, the Gantt lints of the
/// lowered view.  "layer" honours PTASK_SCHED_PARALLEL_LAYERS.  With
/// --certify, also audits the schedule with the independent certifier,
/// merges its PTC findings under "certificate", and captures the first
/// certificate's JSON for --certificate-out.
void lint_schedule(analysis::Report& report, const analysis::Analyzer& analyzer,
                   const core::TaskGraph& graph,
                   const std::string& scheduler_name, int cores,
                   const Options& opt, const cost::CostModel& cost,
                   std::string* certificate_json) {
  std::unique_ptr<sched::Scheduler> scheduler;
  if (scheduler_name == "layer") {
    sched::LayerSchedulerOptions sopts;
    sopts.parallel_layers = env_parallel_layers();
    scheduler = std::make_unique<sched::Pipeline>(
        sched::Pipeline::algorithm1(cost, sopts));
  } else {
    scheduler =
        sched::SchedulerRegistry::instance().make(scheduler_name, cost);
  }
  const sched::Schedule schedule = scheduler->run(graph, cores);
  report.merge(analyzer.lint(schedule, cost), "schedule");
  if (schedule.has_layers()) {
    report.merge(
        analyzer.lint(schedule.scheduled_graph(), schedule.gantt, cost),
        "gantt");
  }
  if (opt.certify) {
    const analysis::Certificate certificate = analysis::certify(graph, schedule);
    report.merge(certificate.report, "certificate");
    if (certificate_json != nullptr && certificate_json->empty()) {
      *certificate_json = analysis::render_json(certificate);
    }
  }
}

analysis::Report lint_program(const std::string& name, const Options& opt,
                              const arch::Machine& machine,
                              std::string* certificate_json) {
  const analysis::Analyzer analyzer;
  analysis::Report report;
  if (name == "epol-spec") {
    const core::HierGraph spec = ode::epol_program_spec(
        std::size_t{1} << 12, 4, 14.0, static_cast<double>(opt.steps));
    report = analyzer.analyze(spec, machine, opt.cores);
    if (!opt.schedule) return report;
    core::TaskGraph flat = core::flatten(spec, opt.steps);
    flat.add_start_stop_markers();
    const cost::CostModel cost(machine);
    lint_schedule(report, analyzer, flat, opt.scheduler, opt.cores, opt, cost,
                  certificate_json);
    return report;
  }
  const core::TaskGraph graph = build_graph(name, opt.steps);
  report = analyzer.analyze(graph, machine, opt.cores);
  if (!opt.schedule) return report;
  const cost::CostModel cost(machine);
  lint_schedule(report, analyzer, graph, opt.scheduler, opt.cores, opt, cost,
                certificate_json);
  return report;
}

/// Lints a serve-protocol "schedule" request file: the exact JSON bytes a
/// ptask_served client would frame.  The request's own scheduler, core
/// count, and machine drive the analysis, so a request can be vetted
/// offline before it is ever sent to the daemon.  Parse failures surface as
/// the protocol's own PTS00x codes.
analysis::Report lint_request(const std::string& path, const Options& opt,
                              std::string* certificate_json) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "ptask_lint: cannot read request file '" << path << "'\n";
    std::exit(2);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  serve::ScheduleRequest request = [&] {
    try {
      return serve::parse_request(buffer.str());
    } catch (const serve::ProtocolError& e) {
      std::cerr << "ptask_lint: " << path << ": " << e.code() << ": "
                << e.what() << "\n";
      std::exit(2);
    }
  }();
  const arch::Machine machine(request.machine);
  const analysis::Analyzer analyzer;
  analysis::Report report =
      analyzer.analyze(request.graph, machine, request.total_cores);
  if (opt.schedule || opt.certify || request.certify) {
    const cost::CostModel cost(machine);
    Options sub = opt;
    sub.certify = opt.certify || request.certify;
    lint_schedule(report, analyzer, request.graph, request.scheduler,
                  request.total_cores, sub, cost, certificate_json);
  }
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "ptask_lint: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--program") {
      opt.programs.emplace_back(value("--program"));
    } else if (arg == "--steps") {
      opt.steps = std::atoi(value("--steps"));
    } else if (arg == "--machine") {
      opt.machine = value("--machine");
    } else if (arg == "--scheduler") {
      opt.scheduler = value("--scheduler");
    } else if (arg == "--cores") {
      opt.cores = std::atoi(value("--cores"));
    } else if (arg == "--schedule") {
      opt.schedule = true;
    } else if (arg == "--certify") {
      opt.certify = true;
      opt.schedule = true;  // a certificate needs a schedule
    } else if (arg == "--certificate-out") {
      opt.certificate_out = value("--certificate-out");
    } else if (arg == "--request") {
      opt.requests.emplace_back(value("--request"));
    } else if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--warnings-as-errors") {
      opt.warnings_as_errors = true;
    } else if (arg == "--codes") {
      print_codes();
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else {
      std::cerr << "ptask_lint: unknown option '" << arg << "'\n";
      usage(std::cerr);
      return 2;
    }
  }
  if (opt.steps < 1) {
    std::cerr << "ptask_lint: --steps must be >= 1\n";
    return 2;
  }
  if (opt.cores < 1) {
    std::cerr << "ptask_lint: --cores must be >= 1\n";
    return 2;
  }
  if (!sched::SchedulerRegistry::instance().contains(opt.scheduler)) {
    std::cerr << "ptask_lint: unknown scheduler '" << opt.scheduler
              << "'; known:";
    for (const std::string& n : sched::SchedulerRegistry::instance().names()) {
      std::cerr << " " << n;
    }
    std::cerr << "\n";
    return 2;
  }

  if (!opt.certificate_out.empty() && !opt.certify) {
    std::cerr << "ptask_lint: --certificate-out requires --certify\n";
    return 2;
  }

  std::vector<std::string> programs;
  for (const std::string& p : opt.programs) {
    if (p == "all") {
      programs = all_programs();
      break;
    }
    bool known = false;
    for (const std::string& name : all_programs()) known |= name == p;
    if (!known) {
      std::cerr << "ptask_lint: unknown program '" << p << "'\n";
      return 2;
    }
    programs.push_back(p);
  }
  // Request files replace the built-in default program set; --program adds
  // built-ins back alongside them.
  if (programs.empty() && opt.requests.empty()) programs = all_programs();

  arch::Machine machine = [&] {
    try {
      return arch::Machine(arch::machine_by_name(opt.machine));
    } catch (const std::exception& e) {
      std::cerr << "ptask_lint: " << e.what() << "\n";
      std::exit(2);
    }
  }();

  std::string certificate_json;
  analysis::Report combined;
  for (const std::string& name : programs) {
    combined.merge(lint_program(name, opt, machine, &certificate_json), name);
  }
  for (const std::string& path : opt.requests) {
    combined.merge(lint_request(path, opt, &certificate_json),
                   "request:" + path);
  }

  if (!opt.certificate_out.empty()) {
    if (certificate_json.empty()) {
      std::cerr << "ptask_lint: no certificate produced (nothing scheduled)\n";
      return 2;
    }
    std::ofstream out(opt.certificate_out, std::ios::binary);
    out << certificate_json << "\n";
    if (!out) {
      std::cerr << "ptask_lint: cannot write '" << opt.certificate_out
                << "'\n";
      return 2;
    }
  }

  if (opt.json) {
    std::cout << analysis::render_json(combined) << "\n";
  } else {
    std::cout << analysis::render_text(combined);
  }
  const bool fail = combined.error_count() > 0 ||
                    (opt.warnings_as_errors && combined.warning_count() > 0);
  return fail ? 1 : 0;
}
