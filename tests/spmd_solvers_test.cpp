// Tests for the executable SPMD solver steps: scheduled parallel execution
// on the runtime must reproduce the sequential solvers bit-for-bit, using
// the real group and orthogonal communication structure of the paper's
// task-parallel program versions.

#include <gtest/gtest.h>

#include "ptask/ode/bruss2d.hpp"
#include "ptask/ode/epol.hpp"
#include "ptask/ode/irk.hpp"
#include "ptask/ode/schroed.hpp"
#include "ptask/ode/spmd_solvers.hpp"
#include "ptask/rt/executor.hpp"
#include "ptask/sched/layer_scheduler.hpp"
#include "ptask/sched/validation.hpp"

namespace ptask::ode {
namespace {

arch::Machine machine(int nodes = 4) {
  arch::MachineSpec spec = arch::chic();
  spec.num_nodes = nodes;
  return arch::Machine(spec);
}

sched::LayeredSchedule make_schedule(const core::TaskGraph& g, int cores,
                                     int fixed_groups) {
  const cost::CostModel cm(machine());
  sched::LayerSchedulerOptions opts;
  opts.fixed_groups = fixed_groups;
  const sched::LayeredSchedule s =
      sched::LayerScheduler(cm, opts).schedule(g, cores);
  EXPECT_TRUE(sched::validate(s, g).ok());
  return s;
}

// --- EPOL: valid under any schedule ---

class SpmdEpolTest : public ::testing::TestWithParam<int> {};

TEST_P(SpmdEpolTest, MatchesSequentialUnderEveryGroupCount) {
  const Bruss2D system(8);
  const int r = 4;
  const double t0 = 0.1, h = 0.002;
  const std::vector<double> y0 = system.initial_state();

  Epol reference(r);
  std::vector<double> expected = y0;
  reference.step(system, t0, h, expected);

  SpmdEpolStep program(system, r, t0, h, y0);
  const core::TaskGraph g = program.build_graph();
  const sched::LayeredSchedule schedule = make_schedule(g, 8, GetParam());
  std::vector<rt::TaskFn> fns = program.build_functions(g);
  rt::Executor exec(8);
  exec.run(schedule, fns);
  EXPECT_EQ(program.result().size(), expected.size());
  EXPECT_LT(max_norm_diff(program.result(), expected), 1e-13);
}

INSTANTIATE_TEST_SUITE_P(GroupCounts, SpmdEpolTest,
                         ::testing::Values(1, 2, 4));

// --- IRK: the task-parallel schedule with real orthogonal communication ---

TEST(SpmdIrkTest, MatchesSequentialSolver) {
  const Bruss2D system(6);  // n = 72
  const int stages = 2, m = 4;
  const double t0 = 0.0, h = 0.005;
  const std::vector<double> y0 = system.initial_state();

  Irk reference(stages, m);
  std::vector<double> expected = y0;
  reference.step(system, t0, h, expected);

  SpmdIrkStep program(system, stages, m, t0, h, y0);
  const core::TaskGraph g = program.build_graph();
  const sched::LayeredSchedule schedule = make_schedule(g, 8, stages);
  std::vector<rt::TaskFn> fns = program.build_functions(g);
  rt::Executor exec(8);
  exec.run(schedule, fns);
  ASSERT_EQ(program.result().size(), expected.size());
  EXPECT_LT(max_norm_diff(program.result(), expected), 1e-13);
}

TEST(SpmdIrkTest, FourStagesOnUnevenGroups) {
  // 4 stages on 10 cores: groups of 3,3,2,2 -- orthogonal communicators
  // exist only for the first two positions; the sync protocol must still
  // be correct.
  const Bruss2D system(5);  // n = 50
  const int stages = 4, m = 3;
  const double t0 = 0.0, h = 0.004;
  const std::vector<double> y0 = system.initial_state();

  Irk reference(stages, m);
  std::vector<double> expected = y0;
  reference.step(system, t0, h, expected);

  SpmdIrkStep program(system, stages, m, t0, h, y0);
  const core::TaskGraph g = program.build_graph();
  const cost::CostModel cm(machine());
  sched::LayerSchedulerOptions opts;
  opts.fixed_groups = stages;
  opts.adjust_group_sizes = false;
  const sched::LayeredSchedule schedule =
      sched::LayerScheduler(cm, opts).schedule(g, 10);
  std::vector<rt::TaskFn> fns = program.build_functions(g);
  rt::Executor exec(10);
  exec.run(schedule, fns);
  EXPECT_LT(max_norm_diff(program.result(), expected), 1e-13);
}

TEST(SpmdIrkTest, RejectsNonLockstepSchedules) {
  const Bruss2D system(4);
  SpmdIrkStep program(system, 4, 2, 0.0, 0.001, system.initial_state());
  const core::TaskGraph g = program.build_graph();
  // Data-parallel (one group) execution would read uninitialized stage
  // vectors of the not-yet-run stages; the body must refuse.
  const sched::LayeredSchedule schedule = make_schedule(g, 4, 1);
  std::vector<rt::TaskFn> fns = program.build_functions(g);
  rt::Executor exec(4);
  EXPECT_THROW(exec.run(schedule, fns), std::logic_error);
}

TEST(SpmdIrkTest, WorksOnDenseSystem) {
  const Schroed system(48);
  const int stages = 2, m = 3;
  const std::vector<double> y0 = system.initial_state();
  Irk reference(stages, m);
  std::vector<double> expected = y0;
  reference.step(system, 0.0, 0.01, expected);

  SpmdIrkStep program(system, stages, m, 0.0, 0.01, y0);
  const core::TaskGraph g = program.build_graph();
  const sched::LayeredSchedule schedule = make_schedule(g, 6, stages);
  std::vector<rt::TaskFn> fns = program.build_functions(g);
  rt::Executor exec(6);
  exec.run(schedule, fns);
  EXPECT_LT(max_norm_diff(program.result(), expected), 1e-13);
}

TEST(SpmdEpolStep, ValidatesInput) {
  const Bruss2D system(4);
  EXPECT_THROW(SpmdEpolStep(system, 2, 0.0, 0.01, {1.0}),
               std::invalid_argument);
  EXPECT_THROW(SpmdIrkStep(system, 2, 0, 0.0, 0.01, system.initial_state()),
               std::invalid_argument);
}

}  // namespace
}  // namespace ptask::ode
