// Edge-case and option-coverage tests that cut across modules: timeline
// evaluation options, hybrid execution on DSM machines, extreme machine
// shapes, and cost-model corner cases.

#include <gtest/gtest.h>

#include <stdexcept>

#include "ptask/core/spec_builder.hpp"
#include "ptask/cost/hybrid_model.hpp"
#include "ptask/ode/graph_gen.hpp"
#include "ptask/sched/data_parallel.hpp"
#include "ptask/sched/layer_scheduler.hpp"
#include "ptask/sched/timeline.hpp"
#include "ptask/viz/gantt.hpp"

namespace ptask {
namespace {

arch::Machine machine(int nodes = 8) {
  arch::MachineSpec spec = arch::chic();
  spec.num_nodes = nodes;
  return arch::Machine(spec);
}

struct Mapped {
  sched::LayeredSchedule schedule;
  std::vector<cost::LayerLayout> layouts;
};

Mapped mapped_irk(const arch::Machine& m, int cores) {
  ode::SolverGraphSpec spec;
  spec.method = ode::Method::IRK;
  spec.n = 1 << 13;
  spec.stages = 4;
  spec.iterations = 2;
  const cost::CostModel cm(m);
  Mapped out;
  out.schedule = sched::LayerScheduler(cm).schedule(spec.step_graph(), cores);
  out.layouts =
      map::map_schedule(out.schedule, m, map::Strategy::Consecutive);
  return out;
}

TEST(TimelineOptions, DisablingRedistributionLowersTheEstimate) {
  ode::SolverGraphSpec spec;
  spec.method = ode::Method::EPOL;
  spec.n = 1 << 15;
  spec.stages = 4;
  const arch::Machine m = machine();
  const cost::CostModel cm(m);
  sched::LayerSchedulerOptions so;
  so.fixed_groups = 2;
  const sched::LayeredSchedule s =
      sched::LayerScheduler(cm, so).schedule(spec.step_graph(), 16);
  const auto layouts = map::map_schedule(s, m, map::Strategy::Consecutive);
  const sched::TimelineEvaluator eval(cm);
  sched::TimelineOptions with, without;
  without.include_redistribution = false;
  const double a = eval.evaluate(s, layouts, with).makespan;
  const double b = eval.evaluate(s, layouts, without).makespan;
  EXPECT_GT(a, b);
  EXPECT_DOUBLE_EQ(eval.evaluate(s, layouts, without).redistribution_time,
                   0.0);
}

TEST(TimelineOptions, BarriersBetweenLayersAddTime) {
  const arch::Machine m = machine();
  const cost::CostModel cm(m);
  const Mapped mapped = mapped_irk(m, 16);
  const sched::TimelineEvaluator eval(cm);
  sched::TimelineOptions with, without;
  without.barrier_between_layers = false;
  const double a = eval.simulate(mapped.schedule, mapped.layouts, with).makespan;
  const double b =
      eval.simulate(mapped.schedule, mapped.layouts, without).makespan;
  EXPECT_GE(a, b);
}

TEST(TimelineOptions, MoreExplicitRepeatsRefineTheSimulation) {
  ode::SolverGraphSpec spec;
  spec.method = ode::Method::DIIRK;
  spec.n = 1 << 10;
  spec.stages = 4;
  spec.iterations = 2;
  const arch::Machine m = machine();
  const cost::CostModel cm(m);
  const sched::LayeredSchedule s =
      sched::LayerScheduler(cm).schedule(spec.step_graph(), 16);
  const auto layouts = map::map_schedule(s, m, map::Strategy::Consecutive);
  const sched::TimelineEvaluator eval(cm);
  sched::TimelineOptions few, many;
  few.max_explicit_repeats = 1;
  many.max_explicit_repeats = 16;
  const sim::SimResult rf = eval.simulate(s, layouts, few);
  const sim::SimResult rm = eval.simulate(s, layouts, many);
  EXPECT_GT(rm.transfers, rf.transfers);  // more lowered messages
  // Both estimates stay in the same ballpark (residual charged as time).
  EXPECT_LT(std::abs(rm.makespan - rf.makespan),
            0.5 * std::max(rm.makespan, rf.makespan));
}

TEST(Hybrid, AltixTeamsMaySpanNodes) {
  // 8 threads per rank on the Altix (4 cores/node): teams span two nodes;
  // the model must classify the span as inter-node and still price it.
  arch::MachineSpec spec = arch::altix();
  spec.num_nodes = 8;
  const arch::Machine m(spec);
  cost::HybridConfig config;
  config.threads_per_rank = 8;
  const cost::HybridCostModel hm(m, config);
  cost::LayerLayout layout;
  cost::GroupLayout g;
  for (int i = 0; i < 16; ++i) g.cores.push_back(i);
  layout.groups.push_back(g);
  EXPECT_EQ(hm.team_span(layout.groups[0], 0), arch::CommLevel::InterNode);
  core::MTask t("t", 1.0e9);
  t.add_comm(core::CollectiveOp{core::CollectiveKind::Allgather,
                                core::CommScope::Group, 1 << 20, 2});
  const double hybrid = hm.mapped_task_time(t, layout, 0);
  EXPECT_GT(hybrid, 0.0);
  // DSM-wide teams pay the reduced inter-node efficiency on compute.
  const cost::CostModel pure(m);
  EXPECT_GT(hybrid, pure.symbolic_compute_time(t, 16));
}

TEST(Hybrid, ThreadsPerRankMustDivideEveryGroup) {
  const arch::Machine m = machine();
  cost::HybridConfig config;
  config.threads_per_rank = 4;
  const cost::HybridCostModel hm(m, config);
  cost::LayerLayout layout;
  layout.groups.push_back(cost::GroupLayout{{0, 1, 2, 3, 4, 5}});  // 6 cores
  EXPECT_THROW(hm.rank_layout(layout), std::invalid_argument);
}

TEST(Timeline, HybridEvaluationRequiresDivisibleGroups) {
  const arch::Machine m = machine();
  const cost::CostModel cm(m);
  const Mapped mapped = mapped_irk(m, 24);  // groups of 6 with K=4
  const sched::TimelineEvaluator eval(cm);
  sched::TimelineOptions hybrid;
  hybrid.threads_per_rank = 4;
  if (mapped.schedule.layers.front().group_sizes.front() % 4 != 0) {
    EXPECT_THROW(eval.evaluate(mapped.schedule, mapped.layouts, hybrid),
                 std::invalid_argument);
  }
}

TEST(CostModel, BarrierAndAllreduceOpsArePriceable) {
  const arch::Machine m = machine();
  const cost::CostModel cm(m);
  core::MTask t("sync", 1.0e8);
  t.add_comm(core::CollectiveOp{core::CollectiveKind::Barrier,
                                core::CommScope::Group, 0, 3});
  t.add_comm(core::CollectiveOp{core::CollectiveKind::Allreduce,
                                core::CommScope::Group, 4096, 2});
  t.add_comm(core::CollectiveOp{core::CollectiveKind::Exchange,
                                core::CommScope::Group, 8192, 1});
  EXPECT_GT(cm.symbolic_comm_time(t, 8, 1, 8), 0.0);
  cost::LayerLayout layout;
  layout.groups.push_back(cost::GroupLayout{{0, 1, 2, 3, 4, 5, 6, 7}});
  EXPECT_GT(cm.mapped_task_time(t, layout, 0),
            cm.symbolic_compute_time(t, 8));
}

TEST(CostModel, SingleCoreGroupHasNoCommunication) {
  const arch::Machine m = machine();
  const cost::CostModel cm(m);
  core::MTask t("t", 1.0e8);
  t.add_comm(core::CollectiveOp{core::CollectiveKind::Allgather,
                                core::CommScope::Group, 1 << 20, 5});
  EXPECT_DOUBLE_EQ(cm.symbolic_comm_time(t, 1, 1, 1), 0.0);
  cost::LayerLayout layout;
  layout.groups.push_back(cost::GroupLayout{{0}});
  EXPECT_DOUBLE_EQ(cm.mapped_task_time(t, layout, 0),
                   cm.symbolic_compute_time(t, 1));
}

TEST(Machine, SingleCoreMachineWorksEndToEnd) {
  arch::MachineSpec spec;
  spec.name = "uni";
  spec.num_nodes = 1;
  spec.procs_per_node = 1;
  spec.cores_per_proc = 1;
  spec.core_flops = 1e9;
  spec.intra_processor = {1e-7, 1e10};
  spec.intra_node = {1e-7, 1e10};
  spec.inter_node = {1e-6, 1e9};
  const arch::Machine m(spec);
  const cost::CostModel cm(m);
  core::TaskGraph g;
  g.add_task(core::MTask("only", 1e9));
  const sched::LayeredSchedule s = sched::LayerScheduler(cm).schedule(g, 1);
  const auto layouts = map::map_schedule(s, m, map::Strategy::Consecutive);
  const sched::TimelineEvaluator eval(cm);
  EXPECT_NEAR(eval.evaluate(s, layouts).makespan, 1.0, 1e-9);
  EXPECT_NEAR(eval.simulate(s, layouts).makespan, 1.0, 1e-9);
}

TEST(Viz, HandlesEmptyAndTinySchedules) {
  core::TaskGraph g;
  g.add_task(core::MTask("lonely", 1e6));
  const arch::Machine m = machine();
  const cost::CostModel cm(m);
  const sched::LayeredSchedule s = sched::LayerScheduler(cm).schedule(g, 4);
  const sched::GanttSchedule gantt =
      sched::to_gantt(s, [&](core::TaskId id, int q, int groups) {
        return cm.symbolic_task_time(s.contraction.contracted.task(id), q,
                                     groups, 4);
      });
  EXPECT_FALSE(
      viz::ascii_gantt(s.contraction.contracted, gantt).empty());
  EXPECT_FALSE(viz::svg_gantt(s.contraction.contracted, gantt).empty());
  const sim::SimResult empty_result;
  EXPECT_FALSE(viz::ascii_trace(empty_result, 2).empty());
  EXPECT_EQ(viz::trace_csv(empty_result), "kind,rank,peer,start,end,bytes\n");
}

TEST(DataParallel, MatchesLayerSchedulerWithForcedSingleGroup) {
  ode::SolverGraphSpec spec;
  spec.method = ode::Method::PAB;
  spec.n = 1 << 13;
  spec.stages = 4;
  const arch::Machine m = machine();
  const cost::CostModel cm(m);
  const core::TaskGraph g = spec.step_graph();
  const double dp =
      sched::DataParallelScheduler(cm).schedule(g, 16).predicted_makespan;
  sched::LayerSchedulerOptions opts;
  opts.fixed_groups = 1;
  const double forced =
      sched::LayerScheduler(cm, opts).schedule(g, 16).predicted_makespan;
  EXPECT_DOUBLE_EQ(dp, forced);
}

// ---- TaskGraph::add_edge edge cases (chosen behavior, regression-locked):
// self edges and cycle-closing edges throw, duplicates are ignored, ids are
// range-checked.

TEST(TaskGraphEdgeCases, AddEdgeRejectsSelfEdges) {
  core::TaskGraph g;
  const core::TaskId a = g.add_task(core::MTask("a", 1.0));
  EXPECT_THROW(g.add_edge(a, a), std::invalid_argument);
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(TaskGraphEdgeCases, AddEdgeRejectsCycles) {
  core::TaskGraph g;
  const core::TaskId a = g.add_task(core::MTask("a", 1.0));
  const core::TaskId b = g.add_task(core::MTask("b", 1.0));
  const core::TaskId c = g.add_task(core::MTask("c", 1.0));
  g.add_edge(a, b);
  g.add_edge(b, c);
  EXPECT_THROW(g.add_edge(c, a), std::invalid_argument);
  EXPECT_THROW(g.add_edge(b, a), std::invalid_argument);
  EXPECT_EQ(g.num_edges(), 2);
}

TEST(TaskGraphEdgeCases, AddEdgeIgnoresDuplicatesAndChecksRange) {
  core::TaskGraph g;
  const core::TaskId a = g.add_task(core::MTask("a", 1.0));
  const core::TaskId b = g.add_task(core::MTask("b", 1.0));
  g.add_edge(a, b);
  g.add_edge(a, b);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_THROW(g.add_edge(a, 5), std::out_of_range);
  EXPECT_THROW(g.add_edge(-1, b), std::out_of_range);
}

// ---- flatten() edge cases ----

TEST(FlattenEdgeCases, RejectsNonPositiveIterations) {
  core::SpecBuilder spec("p");
  const core::Var x = spec.var("x", 64);
  spec.call(core::MTask("a", 1.0), {}, {x});
  const core::HierGraph program = spec.build();
  EXPECT_THROW(core::flatten(program, 0), std::invalid_argument);
  EXPECT_THROW(core::flatten(program, -3), std::invalid_argument);
}

TEST(FlattenEdgeCases, EmptyCompositeBodyKeepsConnectivity) {
  // A while node whose body contains no basic tasks used to vanish from the
  // flat graph, silently disconnecting its predecessors from its successors.
  // It must now survive as a basic task carrying the composite's identity.
  core::SpecBuilder spec("p");
  const core::Var x = spec.var("x", 64);
  spec.call(core::MTask("pre", 1.0), {}, {x});
  spec.while_loop("empty_loop", {x}, [](core::SpecBuilder&) {}, 5.0);
  spec.call(core::MTask("post", 1.0), {x}, {});
  const core::HierGraph program = spec.build();

  const core::TaskGraph flat = core::flatten(program, 3);
  core::TaskId pre = core::kInvalidTask;
  core::TaskId loop = core::kInvalidTask;
  core::TaskId post = core::kInvalidTask;
  for (core::TaskId id = 0; id < flat.num_tasks(); ++id) {
    if (flat.task(id).name() == "pre") pre = id;
    if (flat.task(id).name() == "empty_loop") loop = id;
    if (flat.task(id).name() == "post") post = id;
  }
  ASSERT_NE(pre, core::kInvalidTask);
  ASSERT_NE(loop, core::kInvalidTask) << "empty composite vanished";
  ASSERT_NE(post, core::kInvalidTask);
  EXPECT_TRUE(flat.reaches(pre, post));
  EXPECT_TRUE(flat.has_edge(pre, loop));
  EXPECT_TRUE(flat.has_edge(loop, post));
}

TEST(FlattenEdgeCases, CompositeWithPredecessorsOnlyBecomesFlatSink) {
  // A composite node that has predecessors but no successors: its body's
  // sinks must end the flat graph, and the composite's incoming edges must
  // attach to the body's sources.
  core::SpecBuilder spec("p");
  const core::Var x = spec.var("x", 64);
  spec.call(core::MTask("pre", 1.0), {}, {x});
  spec.while_loop("tail_loop", {x},
                  [&](core::SpecBuilder& body) {
                    const core::Var y = body.var("x", 64);
                    const core::TaskId s1 =
                        body.call(core::MTask("s1", 1.0), {y}, {y});
                    const core::TaskId s2 =
                        body.call(core::MTask("s2", 1.0), {y}, {y});
                    EXPECT_NE(s1, s2);
                  },
                  2.0);
  const core::HierGraph program = spec.build();

  const core::TaskGraph flat = core::flatten(program, 2);
  core::TaskId pre = core::kInvalidTask;
  int body_copies = 0;
  for (core::TaskId id = 0; id < flat.num_tasks(); ++id) {
    const std::string& name = flat.task(id).name();
    if (name == "pre") pre = id;
    if (name.rfind("s1", 0) == 0 || name.rfind("s2", 0) == 0) ++body_copies;
  }
  ASSERT_NE(pre, core::kInvalidTask);
  EXPECT_EQ(body_copies, 4);  // two body tasks x two iterations
  // pre feeds the first copy's source and every body task is downstream.
  for (core::TaskId id = 0; id < flat.num_tasks(); ++id) {
    if (id == pre) continue;
    EXPECT_TRUE(flat.reaches(pre, id))
        << flat.task(id).name() << " is disconnected from pre";
  }
}

}  // namespace
}  // namespace ptask
