// Tests for the mapping strategies (paper Section 3.4, Figs. 9-12).

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "ptask/map/core_sequence.hpp"
#include "ptask/map/mapping.hpp"
#include "ptask/sched/layer_scheduler.hpp"

namespace ptask::map {
namespace {

arch::Machine machine4x4() {
  // Fig. 9-11 platform: four nodes, two dual-core processors each.
  arch::MachineSpec spec = arch::chic();
  spec.num_nodes = 4;
  return arch::Machine(spec);
}

TEST(CoreSequence, ConsecutiveIsNodeMajor) {
  const arch::Machine m = machine4x4();
  const std::vector<int> seq = physical_sequence(m, Strategy::Consecutive);
  std::vector<int> expected(16);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(seq, expected);
}

TEST(CoreSequence, ScatteredRoundRobinsNodes) {
  const arch::Machine m = machine4x4();
  const std::vector<int> seq = physical_sequence(m, Strategy::Scattered);
  // First 4 entries: core 0 of each node (flat 0, 4, 8, 12).
  EXPECT_EQ(seq[0], 0);
  EXPECT_EQ(seq[1], 4);
  EXPECT_EQ(seq[2], 8);
  EXPECT_EQ(seq[3], 12);
  EXPECT_EQ(seq[4], 1);  // then core 1 of node 1
}

TEST(CoreSequence, MixedD2TakesProcessorPairs) {
  const arch::Machine m = machine4x4();
  const std::vector<int> seq = mixed_sequence(m, 2);
  // First 8: first processor (2 cores) of every node.
  EXPECT_EQ((std::vector<int>{seq[0], seq[1], seq[2], seq[3]}),
            (std::vector<int>{0, 1, 4, 5}));
  EXPECT_EQ(seq[8], 2);  // then second processor of node 1
}

TEST(CoreSequence, SpecialCasesCollapseToMixed) {
  const arch::Machine m = machine4x4();
  EXPECT_EQ(physical_sequence(m, Strategy::Consecutive), mixed_sequence(m, 4));
  EXPECT_EQ(physical_sequence(m, Strategy::Scattered), mixed_sequence(m, 1));
}

TEST(CoreSequence, EverySequenceIsAPermutation) {
  const arch::Machine m = machine4x4();
  for (int d : {1, 2, 4}) {
    const std::vector<int> seq = mixed_sequence(m, d);
    std::set<int> unique(seq.begin(), seq.end());
    EXPECT_EQ(unique.size(), static_cast<std::size_t>(m.total_cores()));
    EXPECT_EQ(*unique.begin(), 0);
    EXPECT_EQ(*unique.rbegin(), m.total_cores() - 1);
  }
}

TEST(CoreSequence, RejectsBadBlockSizes) {
  const arch::Machine m = machine4x4();
  EXPECT_THROW(mixed_sequence(m, 0), std::invalid_argument);
  EXPECT_THROW(mixed_sequence(m, 3), std::invalid_argument);  // 3 does not divide 4
  EXPECT_THROW(mixed_sequence(m, 8), std::invalid_argument);
}

TEST(CoreSequence, StrategyLabels) {
  EXPECT_STREQ(to_string(Strategy::Consecutive), "consecutive");
  EXPECT_EQ(strategy_label(Strategy::Mixed, 2), "mixed(d=2)");
  EXPECT_EQ(strategy_label(Strategy::Scattered, 1), "scattered");
}

TEST(MapLayer, SlicesSequenceByGroup) {
  const arch::Machine m = machine4x4();
  const std::vector<int> seq = physical_sequence(m, Strategy::Consecutive);
  const std::vector<int> sizes{4, 4, 4, 4};
  const cost::LayerLayout layout = map_layer(sizes, seq);
  ASSERT_EQ(layout.groups.size(), 4u);
  // Fig. 9: with a consecutive mapping, each 4-core group owns one node.
  for (int g = 0; g < 4; ++g) {
    const cost::GroupLayout& group = layout.groups[static_cast<std::size_t>(g)];
    for (int core : group.cores) {
      EXPECT_EQ(m.core_at(core).node, g);
    }
  }
}

TEST(MapLayer, ScatteredSpreadsEveryGroupOverAllNodes) {
  // Fig. 10: each group gets one core of every node.
  const arch::Machine m = machine4x4();
  const std::vector<int> seq = physical_sequence(m, Strategy::Scattered);
  const cost::LayerLayout layout = map_layer(std::vector<int>{4, 4, 4, 4}, seq);
  for (const cost::GroupLayout& group : layout.groups) {
    std::set<int> nodes;
    for (int core : group.cores) nodes.insert(m.core_at(core).node);
    EXPECT_EQ(nodes.size(), 4u);
  }
}

TEST(MapLayer, GroupsAreDisjoint) {
  const arch::Machine m = machine4x4();
  for (Strategy s : {Strategy::Consecutive, Strategy::Scattered}) {
    const std::vector<int> seq = physical_sequence(m, s);
    const cost::LayerLayout layout = map_layer(std::vector<int>{5, 3, 8}, seq);
    std::set<int> seen;
    for (const cost::GroupLayout& g : layout.groups) {
      for (int core : g.cores) {
        EXPECT_TRUE(seen.insert(core).second) << "core mapped twice";
      }
    }
    EXPECT_EQ(seen.size(), 16u);
  }
}

TEST(MapLayer, SizePreservation) {
  // |F_W(G_i)| == |G_i| for every group (paper Section 3.4).
  const arch::Machine m = machine4x4();
  const std::vector<int> seq = physical_sequence(m, Strategy::Consecutive);
  const std::vector<int> sizes{1, 2, 3, 4, 6};
  const cost::LayerLayout layout = map_layer(sizes, seq);
  for (std::size_t g = 0; g < sizes.size(); ++g) {
    EXPECT_EQ(layout.groups[g].size(), sizes[g]);
  }
}

TEST(MapLayer, RejectsOversizedLayers) {
  const arch::Machine m = machine4x4();
  const std::vector<int> seq = physical_sequence(m, Strategy::Consecutive);
  EXPECT_THROW(map_layer(std::vector<int>{17}, seq), std::invalid_argument);
  EXPECT_THROW(map_layer(std::vector<int>{0, 4}, seq), std::invalid_argument);
}

TEST(MapSchedule, MapsEveryLayer) {
  core::TaskGraph g;
  for (int i = 0; i < 4; ++i) {
    core::MTask t("t" + std::to_string(i), 1.0e10);
    t.add_comm(core::CollectiveOp{core::CollectiveKind::Allgather,
                                  core::CommScope::Group, 4u << 20, 4});
    g.add_task(std::move(t));
  }
  const arch::Machine m = machine4x4();
  const cost::CostModel cm(m);
  const sched::LayeredSchedule s = sched::LayerScheduler(cm).schedule(g, 16);
  const std::vector<cost::LayerLayout> layouts =
      map_schedule(s, m, Strategy::Mixed, 2);
  ASSERT_EQ(layouts.size(), s.layers.size());
  for (std::size_t li = 0; li < layouts.size(); ++li) {
    EXPECT_EQ(layouts[li].total_cores(), 16);
    ASSERT_EQ(layouts[li].groups.size(), s.layers[li].group_sizes.size());
  }
}

TEST(MapSchedule, RejectsOversizedSchedules) {
  core::TaskGraph g;
  g.add_task(core::MTask("t", 1.0));
  const arch::Machine m = machine4x4();
  const cost::CostModel cm(m);
  sched::LayeredSchedule s = sched::LayerScheduler(cm).schedule(g, 16);
  s.total_cores = 999;
  EXPECT_THROW(map_schedule(s, m, Strategy::Consecutive),
               std::invalid_argument);
}

TEST(Fig12, ScatteredAndMixedUseSameCoresDifferentOrder) {
  // Fig. 12: on 8 CHiC nodes with two 16-core groups, scattered and
  // mixed(d=2) select the same core *set* but order it differently.
  arch::MachineSpec spec = arch::chic();
  spec.num_nodes = 8;
  const arch::Machine m(spec);
  const std::vector<int> scat = physical_sequence(m, Strategy::Scattered);
  const std::vector<int> mixed = physical_sequence(m, Strategy::Mixed, 2);
  const std::vector<int> sizes{16, 16};
  const cost::LayerLayout ls = map_layer(sizes, scat);
  const cost::LayerLayout lm = map_layer(sizes, mixed);
  for (std::size_t g = 0; g < 2; ++g) {
    std::set<int> set_s(ls.groups[g].cores.begin(), ls.groups[g].cores.end());
    std::set<int> set_m(lm.groups[g].cores.begin(), lm.groups[g].cores.end());
    EXPECT_EQ(set_s, set_m);
    EXPECT_NE(ls.groups[g].cores, lm.groups[g].cores);
  }
}

}  // namespace
}  // namespace ptask::map
