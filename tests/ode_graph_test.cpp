// Tests for the ODE solver task-graph generators and the Table 1
// communication-operation counts.

#include <gtest/gtest.h>

#include "ptask/ode/bruss2d.hpp"
#include "ptask/ode/graph_gen.hpp"
#include "ptask/sched/data_parallel.hpp"
#include "ptask/sched/layer_scheduler.hpp"
#include "ptask/sched/validation.hpp"

namespace ptask::ode {
namespace {

arch::Machine machine(int nodes = 16) {
  arch::MachineSpec spec = arch::chic();
  spec.num_nodes = nodes;
  return arch::Machine(spec);
}

SolverGraphSpec spec_for(Method method, int stages, int m = 2, int inner = 2) {
  SolverGraphSpec spec;
  spec.method = method;
  spec.n = 1 << 14;
  spec.eval_flop_per_component = 14.0;
  spec.stages = stages;
  spec.iterations = m;
  spec.inner_iterations = inner;
  return spec;
}

/// Schedules the step graph with K (stages) fixed groups -- the paper's
/// task-parallel program version.
sched::LayeredSchedule tp_schedule(const SolverGraphSpec& spec, int cores) {
  const cost::CostModel cm(machine());
  sched::LayerSchedulerOptions opts;
  opts.fixed_groups = spec.method == Method::EPOL ? spec.stages / 2
                                                  : spec.stages;
  const sched::LayerScheduler sched(cm, opts);
  return sched.schedule(spec.step_graph(), cores);
}

sched::LayeredSchedule dp_schedule(const SolverGraphSpec& spec, int cores) {
  const cost::CostModel cm(machine());
  return sched::DataParallelScheduler(cm).schedule(spec.step_graph(), cores);
}

TEST(StepGraph, EpolShape) {
  const SolverGraphSpec spec = spec_for(Method::EPOL, 4);
  const core::TaskGraph g = spec.step_graph();
  EXPECT_EQ(g.num_tasks(), 11);  // 1+2+3+4 micro steps + combine
  // Every micro-step chain ends in the combine.
  const core::TaskId combine = g.num_tasks() - 1;
  EXPECT_EQ(g.task(combine).name(), "combine");
  EXPECT_EQ(g.in_degree(combine), 4);
}

TEST(StepGraph, StageSolversShape) {
  for (Method method : {Method::IRK, Method::DIIRK, Method::PAB,
                        Method::PABM}) {
    const SolverGraphSpec spec = spec_for(method, 4);
    const core::TaskGraph g = spec.step_graph();
    EXPECT_EQ(g.num_tasks(), 5) << to_string(method);  // 4 stages + update
    EXPECT_EQ(g.in_degree(4), 4) << to_string(method);
  }
}

TEST(StepGraph, WorkScalesWithSystemSize) {
  SolverGraphSpec small = spec_for(Method::IRK, 4);
  SolverGraphSpec big = small;
  big.n = small.n * 2;
  EXPECT_NEAR(big.step_graph().total_work_flop(),
              2.0 * small.step_graph().total_work_flop(), 1.0);
}

TEST(StepGraph, MakeSpecPullsSystemProperties) {
  const Bruss2D sys(32);
  const SolverGraphSpec spec = make_spec(Method::PAB, sys, 8);
  EXPECT_EQ(spec.n, sys.size());
  EXPECT_DOUBLE_EQ(spec.eval_flop_per_component,
                   sys.eval_flop_per_component());
  EXPECT_EQ(spec.stages, 8);
}

TEST(StepGraph, Validation) {
  SolverGraphSpec bad = spec_for(Method::IRK, 4);
  bad.n = 0;
  EXPECT_THROW(bad.step_graph(), std::invalid_argument);
  bad = spec_for(Method::IRK, 0);
  EXPECT_THROW(bad.step_graph(), std::invalid_argument);
}

// --- Table 1: communication operation counts per time step ---

TEST(Table1, EpolDataParallel) {
  // dp row: R(R+1)/2 global allgathers, nothing else.
  const int R = 4;
  const CommCounts counts =
      count_comms(dp_schedule(spec_for(Method::EPOL, R), 64));
  EXPECT_EQ(counts.global_allgather, R * (R + 1) / 2);
  EXPECT_EQ(counts.global_bcast, 0);
  EXPECT_EQ(counts.group_allgather, 0);
  EXPECT_EQ(counts.orth_allgather, 0);
}

TEST(Table1, EpolTaskParallel) {
  // tp row: (R+1) group allgathers per group + 1 global bcast.
  const int R = 4;
  const CommCounts counts =
      count_comms(tp_schedule(spec_for(Method::EPOL, R), 64));
  EXPECT_EQ(counts.group_allgather, R + 1);
  EXPECT_EQ(counts.global_bcast, 1);
  EXPECT_EQ(counts.orth_allgather, 0);
  // The combine's own allgather-free execution: only its layer-global ops.
  EXPECT_EQ(counts.global_allgather, 0);
}

TEST(Table1, IrkDataParallel) {
  // dp row: (K*m + 1) global allgathers.
  const int K = 4, m = 3;
  const CommCounts counts =
      count_comms(dp_schedule(spec_for(Method::IRK, K, m), 64));
  EXPECT_EQ(counts.global_allgather, K * m + 1);
  EXPECT_EQ(counts.group_allgather, 0);
  EXPECT_EQ(counts.orth_allgather, 0);
}

TEST(Table1, IrkTaskParallel) {
  // tp row: 1 global + m group + m orthogonal allgathers.
  const int K = 4, m = 3;
  const CommCounts counts =
      count_comms(tp_schedule(spec_for(Method::IRK, K, m), 64));
  EXPECT_EQ(counts.global_allgather, 1);
  EXPECT_EQ(counts.group_allgather, m);
  EXPECT_EQ(counts.orth_allgather, m);
}

TEST(Table1, DiirkDataParallel) {
  // dp row: 1 global allgather + K*(n-1)*I global bcasts.
  const int K = 4, m = 2, I = 2;
  const SolverGraphSpec spec = spec_for(Method::DIIRK, K, m, I);
  const CommCounts counts = count_comms(dp_schedule(spec, 64));
  EXPECT_EQ(counts.global_allgather, 1);
  EXPECT_EQ(counts.global_bcast,
            K * static_cast<int>(spec.n - 1) * I);
  EXPECT_EQ(counts.orth_allgather, 0);
}

TEST(Table1, DiirkTaskParallel) {
  // tp row: 1 global allgather + (n-1)*I group bcasts + m orthogonal.
  const int K = 4, m = 2, I = 2;
  const SolverGraphSpec spec = spec_for(Method::DIIRK, K, m, I);
  const CommCounts counts = count_comms(tp_schedule(spec, 64));
  EXPECT_EQ(counts.global_allgather, 1);
  EXPECT_EQ(counts.group_bcast, static_cast<int>(spec.n - 1) * I);
  EXPECT_EQ(counts.orth_allgather, m);
}

TEST(Table1, PabDataParallel) {
  // dp row: K global allgathers.
  const int K = 8;
  const CommCounts counts =
      count_comms(dp_schedule(spec_for(Method::PAB, K), 64));
  EXPECT_EQ(counts.global_allgather, K);
  EXPECT_EQ(counts.orth_allgather, 0);
}

TEST(Table1, PabTaskParallel) {
  // tp row: 1 group + 1 orthogonal allgather, no global ops.
  const int K = 8;
  const CommCounts counts =
      count_comms(tp_schedule(spec_for(Method::PAB, K), 64));
  EXPECT_EQ(counts.global_allgather, 0);
  EXPECT_EQ(counts.group_allgather, 1);
  EXPECT_EQ(counts.orth_allgather, 1);
}

TEST(Table1, PabmDataParallel) {
  // dp row: K(1+m) global allgathers.
  const int K = 8, m = 2;
  const CommCounts counts =
      count_comms(dp_schedule(spec_for(Method::PABM, K, m), 64));
  EXPECT_EQ(counts.global_allgather, K * (1 + m));
}

TEST(Table1, PabmTaskParallel) {
  // tp row: (1+m) group + 1 orthogonal allgathers.
  const int K = 8, m = 2;
  const CommCounts counts =
      count_comms(tp_schedule(spec_for(Method::PABM, K, m), 64));
  EXPECT_EQ(counts.global_allgather, 0);
  EXPECT_EQ(counts.group_allgather, 1 + m);
  EXPECT_EQ(counts.orth_allgather, 1);
}

// --- hierarchical EPOL specification (Figs. 3/4) ---

TEST(EpolProgramSpec, TwoLevelStructure) {
  const core::HierGraph spec = epol_program_spec(1 << 12, 4, 14.0, 50.0);
  ASSERT_EQ(spec.sub.size(), 1u);
  const core::HierGraph& body = *spec.sub.begin()->second;
  // Body: 10 step tasks + combine + start/stop markers.
  EXPECT_EQ(body.graph.num_tasks(), 11 + 2);
  // Body layering after contraction: steps then combine.
  const core::ChainContraction cc =
      core::contract_linear_chains(body.graph);
  const auto layers = core::greedy_layers(cc.contracted);
  ASSERT_EQ(layers.size(), 2u);
  EXPECT_EQ(layers[0].size(), 4u);
}

TEST(EpolProgramSpec, BodyIsSchedulable) {
  const core::HierGraph spec = epol_program_spec(1 << 14, 8, 14.0, 1.0);
  const core::HierGraph& body = *spec.sub.begin()->second;
  const cost::CostModel cm(machine());
  sched::LayerSchedulerOptions opts;
  opts.fixed_groups = 4;  // the paper's R/2 scheme (Fig. 6 middle)
  const sched::LayeredSchedule s =
      sched::LayerScheduler(cm, opts).schedule(body.graph, 64);
  ASSERT_GE(s.layers.size(), 2u);
  EXPECT_EQ(s.layers.front().num_groups(), 4);
  EXPECT_TRUE(sched::validate(s, body.graph).ok());
}

}  // namespace
}  // namespace ptask::ode
