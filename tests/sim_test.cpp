// Tests for the discrete-event network simulator.

#include <gtest/gtest.h>

#include <numeric>

#include "ptask/net/collectives.hpp"
#include "ptask/sim/event_engine.hpp"
#include "ptask/sim/network_sim.hpp"
#include "ptask/sim/program.hpp"

namespace ptask::sim {
namespace {

arch::Machine small_machine(int nodes = 4) {
  arch::MachineSpec spec = arch::chic();
  spec.num_nodes = nodes;
  return arch::Machine(spec);
}

std::vector<int> identity_placement(int n) {
  std::vector<int> p(static_cast<std::size_t>(n));
  std::iota(p.begin(), p.end(), 0);
  return p;
}

TEST(NetworkSim, PureComputeRunsIndependently) {
  const arch::Machine m = small_machine();
  ProgramSet programs(4);
  programs.rank(0).add_compute(1.0);
  programs.rank(1).add_compute(2.0);
  programs.rank(2).add_compute(0.5);
  // rank 3 idle
  const NetworkSim sim(m, identity_placement(4));
  const SimResult result = sim.run(programs);
  EXPECT_DOUBLE_EQ(result.finish_times[0], 1.0);
  EXPECT_DOUBLE_EQ(result.finish_times[1], 2.0);
  EXPECT_DOUBLE_EQ(result.finish_times[2], 0.5);
  EXPECT_DOUBLE_EQ(result.finish_times[3], 0.0);
  EXPECT_DOUBLE_EQ(result.makespan, 2.0);
  EXPECT_DOUBLE_EQ(result.total_compute_seconds, 3.5);
  EXPECT_EQ(result.transfers, 0u);
}

TEST(NetworkSim, SingleTransferTiming) {
  const arch::Machine m = small_machine();
  ProgramSet programs(2);
  const std::size_t bytes = 1 << 20;
  programs.add_transfer(0, 1, bytes);
  // Ranks on different nodes (flat cores 0 and 4).
  const NetworkSim sim(m, {0, 4});
  const SimResult result = sim.run(programs);
  const arch::LinkParams& link = m.link(arch::CommLevel::InterNode);
  // Receiver waits: sender overhead (latency) + latency + transfer.
  const double expected =
      link.latency_s + link.latency_s + static_cast<double>(bytes) / link.bandwidth_Bps;
  EXPECT_NEAR(result.finish_times[1], expected, 1e-12);
  EXPECT_EQ(result.traffic.bytes_inter_node, bytes);
  EXPECT_EQ(result.transfers, 1u);
}

TEST(NetworkSim, ReceiverWaitsForLateSender) {
  const arch::Machine m = small_machine();
  ProgramSet programs(2);
  programs.rank(0).add_compute(5.0);  // sender is busy first
  programs.add_transfer(0, 1, 1000);
  const NetworkSim sim(m, {0, 1});
  const SimResult result = sim.run(programs);
  EXPECT_GT(result.finish_times[1], 5.0);
}

TEST(NetworkSim, SenderDoesNotWaitForReceiver) {
  const arch::Machine m = small_machine();
  ProgramSet programs(2);
  programs.add_transfer(0, 1, 1000);
  programs.rank(1).add_compute(0.0);
  // Receiver busy for 3 s before posting the recv -- but the send op itself
  // only costs the sender its overhead.
  ProgramSet programs2(2);
  const std::uint64_t tag = programs2.fresh_tag();
  programs2.rank(0).add_send(1, tag, 1000);
  programs2.rank(0).add_compute(1.0);
  programs2.rank(1).add_compute(3.0);
  programs2.rank(1).add_recv(0, tag);
  const NetworkSim sim(m, {0, 1});
  const SimResult result = sim.run(programs2);
  EXPECT_LT(result.finish_times[0], 1.001);  // overhead + compute only
  EXPECT_GT(result.finish_times[1], 3.0);
}

TEST(NetworkSim, DetectsDeadlock) {
  const arch::Machine m = small_machine();
  ProgramSet programs(2);
  programs.rank(0).add_recv(1, 42);  // never sent
  const NetworkSim sim(m, {0, 1});
  EXPECT_THROW(sim.run(programs), std::runtime_error);
}

TEST(NetworkSim, RejectsBadPlacements) {
  const arch::Machine m = small_machine();
  EXPECT_THROW(NetworkSim(m, {0, 0}), std::invalid_argument);   // not injective
  EXPECT_THROW(NetworkSim(m, {0, 999}), std::out_of_range);     // out of range
}

TEST(NetworkSim, CollectiveBarrierSynchronizes) {
  const arch::Machine m = small_machine();
  ProgramSet programs(4);
  programs.rank(2).add_compute(1.0);
  std::vector<int> ranks{0, 1, 2, 3};
  programs.add_collective(net::barrier(4), ranks);
  programs.add_compute(ranks, 0.5);
  const NetworkSim sim(m, identity_placement(4));
  const SimResult result = sim.run(programs);
  // Everyone leaves the barrier after rank 2's 1 s of work.
  for (double t : result.finish_times) EXPECT_GT(t, 1.5 - 1e-9);
}

TEST(NetworkSim, BcastDeliversAfterLogRounds) {
  const arch::Machine m = small_machine(8);
  const int ranks = 8;
  ProgramSet programs(ranks);
  std::vector<int> ids = identity_placement(ranks);
  const std::size_t bytes = 1 << 16;
  programs.add_collective(net::binomial_bcast(ranks, 0, bytes), ids);
  const NetworkSim sim(m, ids);  // all on node 0/1: cores 0..7 span 2 nodes
  const SimResult result = sim.run(programs);
  EXPECT_GT(result.makespan, 0.0);
  EXPECT_EQ(result.traffic.messages, 7u);
}

TEST(NetworkSim, RingAllgatherConsecutiveBeatsScattered) {
  // The simulator must reproduce the Fig. 14 mechanism end-to-end.
  arch::MachineSpec spec = arch::chic();
  spec.num_nodes = 8;
  const arch::Machine m(spec);
  const int ranks = 32;
  const std::size_t per_rank = 128 * 1024;

  auto run_with = [&](const std::vector<int>& placement) {
    ProgramSet programs(ranks);
    std::vector<int> ids = identity_placement(ranks);
    programs.add_collective(net::ring_allgather(ranks, per_rank), ids);
    return NetworkSim(m, placement).run(programs).makespan;
  };

  std::vector<int> consecutive = identity_placement(ranks);
  std::vector<int> scattered(ranks);
  for (int r = 0; r < ranks; ++r) {
    scattered[static_cast<std::size_t>(r)] = (r % 8) * 4 + r / 8;
  }
  EXPECT_LT(run_with(consecutive) * 1.5, run_with(scattered));
}

TEST(NetworkSim, DeterministicReplay) {
  const arch::Machine m = small_machine(8);
  const int ranks = 16;
  ProgramSet programs(ranks);
  std::vector<int> ids = identity_placement(ranks);
  programs.add_collective(net::allreduce(ranks, 4096), ids);
  programs.add_compute(ids, 0.001);
  programs.add_collective(net::ring_allgather(ranks, 8192), ids);
  const NetworkSim sim(m, ids);
  const SimResult a = sim.run(programs);
  const SimResult b = sim.run(programs);
  ASSERT_EQ(a.finish_times.size(), b.finish_times.size());
  for (std::size_t i = 0; i < a.finish_times.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.finish_times[i], b.finish_times[i]);
  }
}

TEST(NetworkSim, ConservesTrafficVolume) {
  const arch::Machine m = small_machine(8);
  const int ranks = 8;
  ProgramSet programs(ranks);
  std::vector<int> ids = identity_placement(ranks);
  const net::MessageSchedule ag = net::ring_allgather(ranks, 1000);
  programs.add_collective(ag, ids);
  const SimResult result = NetworkSim(m, ids).run(programs);
  EXPECT_EQ(result.traffic.total_bytes(), net::schedule_bytes(ag));
}

TEST(ProgramSet, FreshTagsNeverRepeat) {
  ProgramSet programs(2);
  const std::uint64_t a = programs.fresh_tag();
  const std::uint64_t b = programs.fresh_tag();
  EXPECT_NE(a, b);
}

TEST(ProgramSet, SelfTransfersAreDropped) {
  ProgramSet programs(2);
  programs.add_transfer(1, 1, 100);
  EXPECT_TRUE(programs.rank(1).empty());
}

TEST(EventQueueTest, OrdersByTimeThenInsertion) {
  EventQueue<int> q;
  q.push(2.0, 1);
  q.push(1.0, 2);
  q.push(1.0, 3);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace ptask::sim
