// Tests for the layer-based scheduling algorithm (paper Algorithm 1) and
// schedule validation.

#include <gtest/gtest.h>

#include <numeric>

#include "ptask/ode/graph_gen.hpp"
#include "ptask/sched/layer_scheduler.hpp"
#include "ptask/sched/validation.hpp"

namespace ptask::sched {
namespace {

arch::Machine machine(int nodes = 32) {
  arch::MachineSpec spec = arch::chic();
  spec.num_nodes = nodes;
  return arch::Machine(spec);
}

core::TaskGraph independent_tasks(const std::vector<double>& works) {
  core::TaskGraph g;
  for (std::size_t i = 0; i < works.size(); ++i) {
    g.add_task(core::MTask("t" + std::to_string(i), works[i]));
  }
  return g;
}

TEST(GroupSizes, EqualSplit) {
  EXPECT_EQ(equal_group_sizes(8, 4), (std::vector<int>{2, 2, 2, 2}));
  EXPECT_EQ(equal_group_sizes(10, 3), (std::vector<int>{4, 3, 3}));
  EXPECT_EQ(equal_group_sizes(5, 5), (std::vector<int>{1, 1, 1, 1, 1}));
  EXPECT_THROW(equal_group_sizes(3, 4), std::invalid_argument);
  EXPECT_THROW(equal_group_sizes(4, 0), std::invalid_argument);
}

TEST(GroupSizes, ProportionalAdjustment) {
  // Weights 3:1 over 8 cores -> 6 and 2.
  EXPECT_EQ(proportional_group_sizes(8, {3.0, 1.0}), (std::vector<int>{6, 2}));
  // Every group keeps at least one core even with zero weight.
  const std::vector<int> sizes = proportional_group_sizes(4, {1.0, 0.0, 0.0});
  EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), 0), 4);
  for (int s : sizes) EXPECT_GE(s, 1);
  // Zero total weight falls back to equal sizes.
  EXPECT_EQ(proportional_group_sizes(6, {0.0, 0.0}), (std::vector<int>{3, 3}));
}

TEST(GroupSizes, ProportionalAlwaysSumsToTotal) {
  for (int total : {4, 7, 16, 33, 512}) {
    for (const std::vector<double>& w :
         {std::vector<double>{1, 2, 3}, std::vector<double>{5, 1, 1, 1},
          std::vector<double>{0.1, 0.9}}) {
      if (total < static_cast<int>(w.size())) continue;
      const std::vector<int> sizes = proportional_group_sizes(total, w);
      EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), 0), total);
      for (int s : sizes) EXPECT_GE(s, 1);
    }
  }
}

class LayerSchedulerTest : public ::testing::Test {
 protected:
  LayerSchedulerTest() : machine_(machine()), cost_(machine_) {}
  arch::Machine machine_;
  cost::CostModel cost_;
};

TEST_F(LayerSchedulerTest, SingleTaskGetsAllCores) {
  core::TaskGraph g = independent_tasks({1.0e12});
  const LayerScheduler sched(cost_);
  const LayeredSchedule s = sched.schedule(g, 16);
  ASSERT_EQ(s.layers.size(), 1u);
  EXPECT_EQ(s.layers[0].num_groups(), 1);
  EXPECT_EQ(s.layers[0].group_sizes[0], 16);
}

TEST_F(LayerSchedulerTest, CommHeavyIndependentTasksSplitIntoGroups) {
  // Four identical tasks whose group-internal communication makes full-width
  // execution wasteful: Algorithm 1 must pick g > 1.
  core::TaskGraph g;
  for (int i = 0; i < 4; ++i) {
    core::MTask t("t" + std::to_string(i), 1.0e10);
    t.add_comm(core::CollectiveOp{core::CollectiveKind::Allgather,
                                  core::CommScope::Group, 8u << 20, 4});
    g.add_task(std::move(t));
  }
  const LayerScheduler sched(cost_);
  const LayeredSchedule s = sched.schedule(g, 64);
  ASSERT_EQ(s.layers.size(), 1u);
  EXPECT_GT(s.layers[0].num_groups(), 1);
  const ValidationReport report = validate(s, g);
  EXPECT_TRUE(report.ok()) << report.errors.front();
}

TEST_F(LayerSchedulerTest, PureComputeTasksPreferDataParallel) {
  // Without communication, splitting brings no benefit; equal work on all
  // cores one after another has the same predicted time as any split, and
  // the search keeps the first (g=1) optimum.
  core::TaskGraph g = independent_tasks({1e9, 1e9, 1e9, 1e9});
  const LayerScheduler sched(cost_);
  const LayeredSchedule s = sched.schedule(g, 8);
  EXPECT_EQ(s.layers[0].num_groups(), 1);
}

TEST_F(LayerSchedulerTest, GroupAdjustmentFollowsWork) {
  // Two tasks with 3:1 work and heavy comm so that g=2 wins; the adjustment
  // step must hand the bigger task about 3/4 of the cores.
  core::TaskGraph g;
  for (double w : {3.0e10, 1.0e10}) {
    core::MTask t("t", w);
    t.add_comm(core::CollectiveOp{core::CollectiveKind::Allgather,
                                  core::CommScope::Group, 32u << 20, 8});
    g.add_task(std::move(t));
  }
  LayerSchedulerOptions opts;
  opts.fixed_groups = 2;
  const LayerScheduler sched(cost_, opts);
  const LayeredSchedule s = sched.schedule(g, 16);
  ASSERT_EQ(s.layers[0].num_groups(), 2);
  std::vector<int> sizes = s.layers[0].group_sizes;
  std::sort(sizes.begin(), sizes.end());
  EXPECT_EQ(sizes, (std::vector<int>{4, 12}));
}

TEST_F(LayerSchedulerTest, AdjustmentCanBeDisabled) {
  core::TaskGraph g;
  for (double w : {3.0e10, 1.0e10}) {
    core::MTask t("t", w);
    t.add_comm(core::CollectiveOp{core::CollectiveKind::Allgather,
                                  core::CommScope::Group, 32u << 20, 8});
    g.add_task(std::move(t));
  }
  LayerSchedulerOptions opts;
  opts.fixed_groups = 2;
  opts.adjust_group_sizes = false;
  const LayerScheduler sched(cost_, opts);
  const LayeredSchedule s = sched.schedule(g, 16);
  EXPECT_EQ(s.layers[0].group_sizes, (std::vector<int>{8, 8}));
}

TEST_F(LayerSchedulerTest, LptAssignmentBalancesAccumulatedTime) {
  // 5 tasks with works 5,4,3,2,1 on 2 groups: LPT gives {5,2,1} vs {4,3}.
  core::TaskGraph g = independent_tasks({5e9, 4e9, 3e9, 2e9, 1e9});
  LayerSchedulerOptions opts;
  opts.fixed_groups = 2;
  opts.adjust_group_sizes = false;
  const LayerScheduler sched(cost_, opts);
  const LayeredSchedule s = sched.schedule(g, 8);
  std::vector<double> acc(2, 0.0);
  for (std::size_t i = 0; i < s.layers[0].tasks.size(); ++i) {
    acc[static_cast<std::size_t>(s.layers[0].task_group[i])] +=
        s.contraction.contracted.task(s.layers[0].tasks[i]).work_flop();
  }
  EXPECT_NEAR(acc[0], acc[1], 1.01e9);  // within one small task
}

TEST_F(LayerSchedulerTest, EpolScheduleMatchesPaperStructure) {
  // Fig. 6 (middle): the task-parallel EPOL version uses R/2 groups and each
  // group handles approximations i and R+1-i (same micro step count), which
  // is exactly what the LPT assignment of Algorithm 1 produces.
  ode::SolverGraphSpec spec;
  spec.method = ode::Method::EPOL;
  spec.n = 1 << 16;
  spec.stages = 8;
  const core::TaskGraph g = spec.step_graph();
  LayerSchedulerOptions opts;
  opts.fixed_groups = 4;  // R/2
  const LayerScheduler sched(cost_, opts);
  const LayeredSchedule s = sched.schedule(g, 64);
  ASSERT_EQ(s.layers.size(), 2u);
  EXPECT_EQ(s.layers[0].num_groups(), 4);  // R/2 = 4
  // Each group computes R+1 = 9 micro steps.
  std::vector<int> micro_steps(4, 0);
  for (std::size_t i = 0; i < s.layers[0].tasks.size(); ++i) {
    micro_steps[static_cast<std::size_t>(s.layers[0].task_group[i])] +=
        static_cast<int>(s.contraction
                             .members[static_cast<std::size_t>(
                                 s.layers[0].tasks[i])]
                             .size());
  }
  for (int m : micro_steps) EXPECT_EQ(m, 9);
  // Second layer: the combine on all cores.
  EXPECT_EQ(s.layers[1].num_groups(), 1);
  const ValidationReport report = validate(s, g);
  EXPECT_TRUE(report.ok()) << report.errors.front();
}

TEST_F(LayerSchedulerTest, EpolFreeSearchPicksTaskParallelism) {
  // The exact group count the search picks depends on the platform constants
  // (the paper makes the same observation); it must exploit task
  // parallelism (g > 1) and be at least as good as the paper's R/2 scheme
  // under the same cost model.
  ode::SolverGraphSpec spec;
  spec.method = ode::Method::EPOL;
  spec.n = 1 << 16;
  spec.stages = 8;
  const core::TaskGraph g = spec.step_graph();
  const LayeredSchedule free_search = LayerScheduler(cost_).schedule(g, 64);
  EXPECT_GT(free_search.layers[0].num_groups(), 1);
  EXPECT_LE(free_search.layers[0].num_groups(), 8);

  LayerSchedulerOptions half;
  half.fixed_groups = 4;
  const LayeredSchedule r_half = LayerScheduler(cost_, half).schedule(g, 64);
  EXPECT_LE(free_search.predicted_makespan,
            r_half.predicted_makespan * 1.0001);
}

TEST_F(LayerSchedulerTest, StageSolversUseKGroups) {
  // IRK/PAB/PABM: the K independent stage tasks run on K disjoint groups.
  for (ode::Method method :
       {ode::Method::IRK, ode::Method::PAB, ode::Method::PABM}) {
    ode::SolverGraphSpec spec;
    spec.method = method;
    spec.n = 1 << 16;
    spec.stages = 4;
    spec.iterations = 3;
    const core::TaskGraph g = spec.step_graph();
    const LayerScheduler sched(cost_);
    const LayeredSchedule s = sched.schedule(g, 64);
    EXPECT_EQ(s.layers[0].num_groups(), 4) << to_string(method);
    EXPECT_TRUE(validate(s, g).ok()) << to_string(method);
  }
}

TEST_F(LayerSchedulerTest, FixedGroupsIsClamped) {
  core::TaskGraph g = independent_tasks({1e9, 1e9});
  LayerSchedulerOptions opts;
  opts.fixed_groups = 16;  // only 2 tasks
  const LayerScheduler sched(cost_, opts);
  const LayeredSchedule s = sched.schedule(g, 8);
  EXPECT_EQ(s.layers[0].num_groups(), 2);
}

TEST_F(LayerSchedulerTest, PredictedMakespanAccumulatesLayers) {
  ode::SolverGraphSpec spec;
  spec.method = ode::Method::IRK;
  spec.n = 1 << 14;
  spec.stages = 4;
  spec.iterations = 2;
  const LayerScheduler sched(cost_);
  const LayeredSchedule s = sched.schedule(spec.step_graph(), 16);
  double sum = 0.0;
  for (const ScheduledLayer& l : s.layers) sum += l.predicted_time;
  EXPECT_DOUBLE_EQ(s.predicted_makespan, sum);
  EXPECT_GT(sum, 0.0);
}

TEST_F(LayerSchedulerTest, RejectsNonPositiveCores) {
  core::TaskGraph g = independent_tasks({1.0});
  const LayerScheduler sched(cost_);
  EXPECT_THROW(sched.schedule(g, 0), std::invalid_argument);
}

// Property sweep: validity for all (method, core count) combinations.
class ScheduleValidityTest
    : public ::testing::TestWithParam<std::tuple<ode::Method, int>> {};

TEST_P(ScheduleValidityTest, ScheduleIsValidAndGantt) {
  const auto [method, cores] = GetParam();
  ode::SolverGraphSpec spec;
  spec.method = method;
  spec.n = 1 << 14;
  spec.stages = 4;
  spec.iterations = 2;
  spec.inner_iterations = 2;
  const core::TaskGraph g = spec.step_graph();

  const arch::Machine m = machine(256);
  const cost::CostModel cost(m);
  const LayerScheduler sched(cost);
  const LayeredSchedule s = sched.schedule(g, cores);
  const ValidationReport report = validate(s, g);
  EXPECT_TRUE(report.ok()) << report.errors.front();

  // Lower to Gantt and validate that view as well.
  const GanttSchedule gantt = to_gantt(
      s, [&](core::TaskId id, int q, int groups) {
        return cost.symbolic_task_time(s.contraction.contracted.task(id), q,
                                       groups, cores);
      });
  const ValidationReport gantt_report =
      validate(gantt, s.contraction.contracted);
  EXPECT_TRUE(gantt_report.ok()) << gantt_report.errors.front();
  EXPECT_GT(gantt.makespan, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    MethodsAndCores, ScheduleValidityTest,
    ::testing::Combine(::testing::Values(ode::Method::EPOL, ode::Method::IRK,
                                         ode::Method::DIIRK, ode::Method::PAB,
                                         ode::Method::PABM),
                       ::testing::Values(4, 16, 64, 128)));

// --- validation catches broken schedules ---

TEST(Validation, DetectsDependentTasksInOneLayer) {
  core::TaskGraph g;
  const core::TaskId a = g.add_task(core::MTask("a", 1.0));
  const core::TaskId b = g.add_task(core::MTask("b", 1.0));
  g.add_edge(a, b);

  LayeredSchedule s;
  s.total_cores = 4;
  s.contraction.contracted = g;
  s.contraction.members = {{a}, {b}};
  s.contraction.representative = {a, b};
  ScheduledLayer layer;
  layer.tasks = {a, b};
  layer.group_sizes = {2, 2};
  layer.task_group = {0, 1};
  s.layers.push_back(layer);
  const ValidationReport report = validate(s, g);
  EXPECT_FALSE(report.ok());
}

TEST(Validation, DetectsBadGroupSizes) {
  core::TaskGraph g;
  const core::TaskId a = g.add_task(core::MTask("a", 1.0));
  LayeredSchedule s;
  s.total_cores = 4;
  s.contraction.contracted = g;
  s.contraction.members = {{a}};
  s.contraction.representative = {a};
  ScheduledLayer layer;
  layer.tasks = {a};
  layer.group_sizes = {3};  // != total_cores
  layer.task_group = {0};
  s.layers.push_back(layer);
  EXPECT_FALSE(validate(s, g).ok());
}

TEST(Validation, DetectsMissingAndDuplicateTasks) {
  core::TaskGraph g;
  g.add_task(core::MTask("a", 1.0));
  g.add_task(core::MTask("b", 1.0));
  LayeredSchedule s;
  s.total_cores = 2;
  s.contraction.contracted = g;
  s.contraction.members = {{0}, {1}};
  s.contraction.representative = {0, 1};
  ScheduledLayer layer;
  layer.tasks = {0, 0};  // duplicate a, missing b
  layer.group_sizes = {1, 1};
  layer.task_group = {0, 1};
  s.layers.push_back(layer);
  EXPECT_FALSE(validate(s, g).ok());
}

TEST(Validation, GanttDetectsCoreOverlapAndPrecedence) {
  core::TaskGraph g;
  const core::TaskId a = g.add_task(core::MTask("a", 1.0));
  const core::TaskId b = g.add_task(core::MTask("b", 1.0));
  g.add_edge(a, b);
  GanttSchedule gantt;
  gantt.total_cores = 2;
  gantt.slots.resize(2);
  gantt.slots[static_cast<std::size_t>(a)] = {{0, 1}, 0.0, 2.0};
  gantt.slots[static_cast<std::size_t>(b)] = {{1}, 1.0, 3.0};  // overlap + early
  const ValidationReport report = validate(gantt, g);
  EXPECT_FALSE(report.ok());
  EXPECT_GE(report.errors.size(), 2u);
}

TEST(Describe, RendersGroupsAndTasks) {
  core::TaskGraph g;
  g.add_task(core::MTask("alpha", 1.0));
  const arch::Machine m = machine(4);
  const cost::CostModel cost(m);
  const LayerScheduler sched(cost);
  const LayeredSchedule s = sched.schedule(g, 4);
  const std::string text = describe(s);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("layer 0"), std::string::npos);
}

}  // namespace
}  // namespace ptask::sched
