// Tests for the portfolio auto-scheduler: winner selection and dominance,
// the scoreboard (report + notes), restricted strategy lists, metric
// variants, parallel execution, and failure capture.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "ptask/arch/machine.hpp"
#include "ptask/cost/cost_model.hpp"
#include "ptask/ode/graph_gen.hpp"
#include "ptask/sched/portfolio.hpp"
#include "ptask/sched/registry.hpp"

namespace ptask::sched {
namespace {

arch::Machine machine(int nodes = 8) {
  arch::MachineSpec spec = arch::chic();
  spec.num_nodes = nodes;
  return arch::Machine(spec);
}

core::TaskGraph solver_graph(ode::Method method = ode::Method::PABM) {
  ode::SolverGraphSpec spec;
  spec.method = method;
  spec.n = 1 << 12;
  spec.stages = 4;
  spec.iterations = 2;
  return spec.step_graph();
}

/// The registry names the default portfolio runs (everything but itself and
/// the incremental alias of the layer pipeline).
std::vector<std::string> individual_strategies() {
  std::vector<std::string> names;
  for (const std::string& name : SchedulerRegistry::instance().names()) {
    if (name != "portfolio" && name != "incremental") names.push_back(name);
  }
  return names;
}

class PortfolioTest : public ::testing::Test {
 protected:
  PortfolioTest() : machine_(machine()), cost_(machine_) {}
  arch::Machine machine_;
  cost::CostModel cost_;
};

TEST_F(PortfolioTest, WinnerDominatesEveryIndividualStrategy) {
  const core::TaskGraph graph = solver_graph();
  double best = std::numeric_limits<double>::infinity();
  std::string best_name;
  for (const std::string& name : individual_strategies()) {
    const Schedule s =
        SchedulerRegistry::instance().make(name, cost_)->run(graph, 32);
    if (s.makespan() < best) {
      best = s.makespan();
      best_name = name;
    }
  }

  const PortfolioScheduler portfolio(cost_);
  PortfolioReport report;
  const Schedule winner = portfolio.run(graph, 32, report);
  EXPECT_EQ(winner.makespan(), best);
  EXPECT_EQ(report.winner, best_name);
  EXPECT_EQ(winner.strategy, best_name)
      << "the winner keeps its own strategy name";
  EXPECT_EQ(report.scores.size(), individual_strategies().size());
}

TEST_F(PortfolioTest, ScoreboardIsAppendedToTheWinnersNotes) {
  const core::TaskGraph graph = solver_graph();
  const PortfolioScheduler portfolio(cost_);
  PortfolioReport report;
  const Schedule winner = portfolio.run(graph, 32, report);
  // One header line plus one line per strategy, winner marked with '*'.
  std::size_t rows = 0;
  bool header = false;
  bool starred = false;
  for (const std::string& note : winner.notes) {
    if (note.rfind("portfolio[symbolic] winner=", 0) == 0) header = true;
    if (note.rfind("portfolio: ", 0) == 0) {
      ++rows;
      if (note.size() >= 2 && note.compare(note.size() - 2, 2, " *") == 0) {
        starred = true;
        EXPECT_NE(note.find(report.winner), std::string::npos);
      }
    }
  }
  EXPECT_TRUE(header);
  EXPECT_EQ(rows, report.scores.size());
  EXPECT_TRUE(starred);
  for (const StrategyScore& score : report.scores) {
    EXPECT_FALSE(score.failed) << score.strategy << ": " << score.error;
    EXPECT_GT(score.makespan, 0.0) << score.strategy;
    EXPECT_GE(score.millis, 0.0) << score.strategy;
  }
}

TEST_F(PortfolioTest, RestrictedStrategyListRunsOnlyThoseStrategies) {
  const core::TaskGraph graph = solver_graph();
  PortfolioOptions options;
  options.strategies = {"dp"};
  const PortfolioScheduler portfolio(cost_, options);
  PortfolioReport report;
  const Schedule winner = portfolio.run(graph, 32, report);
  EXPECT_EQ(winner.strategy, "dp");
  EXPECT_EQ(report.winner, "dp");
  ASSERT_EQ(report.scores.size(), 1u);
  EXPECT_EQ(report.scores[0].strategy, "dp");
}

TEST_F(PortfolioTest, ParallelExecutionMatchesSerial) {
  const core::TaskGraph graph = solver_graph();
  PortfolioOptions serial;
  PortfolioOptions parallel;
  parallel.parallel = true;
  PortfolioReport serial_report;
  PortfolioReport parallel_report;
  const Schedule a =
      PortfolioScheduler(cost_, serial).run(graph, 32, serial_report);
  const Schedule b =
      PortfolioScheduler(cost_, parallel).run(graph, 32, parallel_report);
  EXPECT_EQ(a.strategy, b.strategy);
  EXPECT_EQ(a.makespan(), b.makespan());
  EXPECT_EQ(serial_report.winner, parallel_report.winner);
  ASSERT_EQ(serial_report.scores.size(), parallel_report.scores.size());
  for (std::size_t i = 0; i < serial_report.scores.size(); ++i) {
    EXPECT_EQ(serial_report.scores[i].strategy,
              parallel_report.scores[i].strategy);
    EXPECT_EQ(serial_report.scores[i].score, parallel_report.scores[i].score);
  }
}

TEST_F(PortfolioTest, EveryMetricProducesAWinner) {
  const core::TaskGraph graph = solver_graph(ode::Method::IRK);
  for (const PortfolioMetric metric :
       {PortfolioMetric::SymbolicMakespan, PortfolioMetric::CommAware,
        PortfolioMetric::Simulated}) {
    PortfolioOptions options;
    options.metric = metric;
    PortfolioReport report;
    const Schedule winner =
        PortfolioScheduler(cost_, options).run(graph, 32, report);
    EXPECT_GT(winner.makespan(), 0.0) << to_string(metric);
    EXPECT_FALSE(report.winner.empty()) << to_string(metric);
    for (const StrategyScore& score : report.scores) {
      EXPECT_FALSE(score.failed)
          << to_string(metric) << "/" << score.strategy << ": " << score.error;
      if (metric == PortfolioMetric::CommAware) {
        // Comm-aware score = makespan + unpriced re-distribution penalty.
        EXPECT_GE(score.score, score.makespan) << score.strategy;
      }
    }
  }
}

TEST_F(PortfolioTest, FailingStrategyIsCapturedNotPropagated) {
  const core::TaskGraph graph = solver_graph();
  PortfolioOptions options;
  // An unregistered name fails at construction inside the strategy runner;
  // the failure must land in the scoreboard, not escape the portfolio.
  options.strategies = {"does-not-exist", "layer"};
  PortfolioReport report;
  const Schedule winner =
      PortfolioScheduler(cost_, options).run(graph, 32, report);
  EXPECT_EQ(winner.strategy, "layer");
  ASSERT_EQ(report.scores.size(), 2u);
  EXPECT_TRUE(report.scores[0].failed);
  EXPECT_FALSE(report.scores[0].error.empty());
  EXPECT_EQ(report.scores[0].score,
            std::numeric_limits<double>::infinity());
  EXPECT_FALSE(report.scores[1].failed);
  bool failure_noted = false;
  for (const std::string& note : winner.notes) {
    failure_noted |= note.find("FAILED") != std::string::npos;
  }
  EXPECT_TRUE(failure_noted);
}

TEST_F(PortfolioTest, ThrowsWhenEveryStrategyFails) {
  const core::TaskGraph graph = solver_graph();
  PortfolioOptions options;
  options.strategies = {"does-not-exist"};
  EXPECT_THROW(PortfolioScheduler(cost_, options).run(graph, 32),
               std::runtime_error);
}

TEST_F(PortfolioTest, RejectsNonPositiveCoreCounts) {
  const core::TaskGraph graph = solver_graph();
  EXPECT_THROW(PortfolioScheduler(cost_).run(graph, 0),
               std::invalid_argument);
}

TEST_F(PortfolioTest, TiesBreakTowardsTheEarlierStrategy) {
  // Running the same strategy twice under different positions produces
  // identical scores; the earlier entry must win.
  const core::TaskGraph graph = solver_graph();
  PortfolioOptions options;
  options.strategies = {"layer", "layer"};
  PortfolioReport report;
  const Schedule winner =
      PortfolioScheduler(cost_, options).run(graph, 32, report);
  ASSERT_EQ(report.scores.size(), 2u);
  EXPECT_EQ(report.scores[0].score, report.scores[1].score);
  EXPECT_EQ(winner.strategy, "layer");
  EXPECT_EQ(report.winner, "layer");
}

}  // namespace
}  // namespace ptask::sched
