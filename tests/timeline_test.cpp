// Tests for the timeline evaluator: analytic and simulated makespans of
// mapped schedules, re-distribution handling, and hybrid execution.

#include <gtest/gtest.h>

#include "ptask/ode/graph_gen.hpp"
#include "ptask/sched/data_parallel.hpp"
#include "ptask/sched/layer_scheduler.hpp"
#include "ptask/sched/timeline.hpp"

namespace ptask::sched {
namespace {

arch::Machine machine(int nodes = 16) {
  arch::MachineSpec spec = arch::chic();
  spec.num_nodes = nodes;
  return arch::Machine(spec);
}

struct Mapped {
  LayeredSchedule schedule;
  std::vector<cost::LayerLayout> layouts;
};

Mapped schedule_and_map(const core::TaskGraph& g, const arch::Machine& m,
                        const cost::CostModel& cm, int cores,
                        map::Strategy strategy) {
  Mapped mapped;
  mapped.schedule = LayerScheduler(cm).schedule(g, cores);
  mapped.layouts = map::map_schedule(mapped.schedule, m, strategy);
  return mapped;
}

TEST(Timeline, AnalyticMakespanSumsLayers) {
  ode::SolverGraphSpec spec;
  spec.method = ode::Method::IRK;
  spec.n = 1 << 14;
  spec.stages = 4;
  spec.iterations = 2;
  const arch::Machine m = machine();
  const cost::CostModel cm(m);
  const Mapped mapped = schedule_and_map(spec.step_graph(), m, cm, 32,
                                         map::Strategy::Consecutive);
  const TimelineEvaluator eval(cm);
  TimelineOptions opts;
  opts.include_redistribution = false;
  const TimelineResult result =
      eval.evaluate(mapped.schedule, mapped.layouts, opts);
  double sum = 0.0;
  for (double t : result.layer_times) sum += t;
  EXPECT_DOUBLE_EQ(result.makespan, sum);
  EXPECT_EQ(result.layer_times.size(), mapped.schedule.layers.size());
}

TEST(Timeline, RedistributionEdgesFoundForEpol) {
  // EPOL: the combine consumes V1..VR produced by the chains.
  ode::SolverGraphSpec spec;
  spec.method = ode::Method::EPOL;
  spec.n = 1 << 14;
  spec.stages = 4;
  const arch::Machine m = machine();
  const cost::CostModel cm(m);
  const Mapped mapped = schedule_and_map(spec.step_graph(), m, cm, 16,
                                         map::Strategy::Consecutive);
  const std::vector<RedistributionEdge> edges =
      redistribution_edges(mapped.schedule);
  // One edge per approximation chain (V_i) into the combine.
  int v_edges = 0;
  for (const RedistributionEdge& e : edges) {
    if (e.param_name.rfind("V", 0) == 0) ++v_edges;
  }
  EXPECT_EQ(v_edges, 4);
}

TEST(Timeline, RedistributionCostsAppearOnlyAcrossGroups) {
  ode::SolverGraphSpec spec;
  spec.method = ode::Method::EPOL;
  spec.n = 1 << 16;
  spec.stages = 4;
  const arch::Machine m = machine();
  const cost::CostModel cm(m);
  const TimelineEvaluator eval(cm);

  // Task-parallel schedule: V_i live on group i, combine on all cores ->
  // re-distribution time > 0.
  const Mapped tp = schedule_and_map(spec.step_graph(), m, cm, 16,
                                     map::Strategy::Consecutive);
  const TimelineResult tp_result = eval.evaluate(tp.schedule, tp.layouts);

  // Data-parallel schedule: everything on all cores, replicated -> free.
  const LayeredSchedule dp =
      DataParallelScheduler(cm).schedule(spec.step_graph(), 16);
  const std::vector<cost::LayerLayout> dp_layouts =
      map::map_schedule(dp, m, map::Strategy::Consecutive);
  const TimelineResult dp_result = eval.evaluate(dp, dp_layouts);

  if (tp.schedule.layers.front().num_groups() > 1) {
    EXPECT_GT(tp_result.redistribution_time, 0.0);
  }
  EXPECT_DOUBLE_EQ(dp_result.redistribution_time, 0.0);
}

TEST(Timeline, SimulationAndAnalyticAgreeOnOrderOfMagnitude) {
  ode::SolverGraphSpec spec;
  spec.method = ode::Method::IRK;
  spec.n = 1 << 15;
  spec.stages = 4;
  spec.iterations = 2;
  const arch::Machine m = machine();
  const cost::CostModel cm(m);
  const Mapped mapped = schedule_and_map(spec.step_graph(), m, cm, 32,
                                         map::Strategy::Consecutive);
  const TimelineEvaluator eval(cm);
  const TimelineResult analytic = eval.evaluate(mapped.schedule, mapped.layouts);
  const sim::SimResult simulated =
      eval.simulate(mapped.schedule, mapped.layouts);
  EXPECT_GT(simulated.makespan, 0.0);
  EXPECT_LT(simulated.makespan, analytic.makespan * 5.0);
  EXPECT_GT(simulated.makespan, analytic.makespan / 5.0);
}

TEST(Timeline, SimulationIsDeterministic) {
  ode::SolverGraphSpec spec;
  spec.method = ode::Method::PAB;
  spec.n = 1 << 14;
  spec.stages = 4;
  const arch::Machine m = machine();
  const cost::CostModel cm(m);
  const Mapped mapped = schedule_and_map(spec.step_graph(), m, cm, 16,
                                         map::Strategy::Scattered);
  const TimelineEvaluator eval(cm);
  const double a = eval.simulate(mapped.schedule, mapped.layouts).makespan;
  const double b = eval.simulate(mapped.schedule, mapped.layouts).makespan;
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(Timeline, ConsecutiveMappingBeatsScatteredForGroupHeavySolver) {
  // DIIRK is dominated by group-internal broadcasts: consecutive must win
  // in both the analytic and the simulated evaluation (Fig. 15).
  ode::SolverGraphSpec spec;
  spec.method = ode::Method::DIIRK;
  spec.n = 1 << 12;
  spec.stages = 4;
  spec.iterations = 2;
  spec.inner_iterations = 2;
  const arch::Machine m = machine(32);
  const cost::CostModel cm(m);
  const core::TaskGraph g = spec.step_graph();
  const TimelineEvaluator eval(cm);

  const Mapped cons =
      schedule_and_map(g, m, cm, 64, map::Strategy::Consecutive);
  const Mapped scat = schedule_and_map(g, m, cm, 64, map::Strategy::Scattered);
  EXPECT_LT(eval.evaluate(cons.schedule, cons.layouts).makespan,
            eval.evaluate(scat.schedule, scat.layouts).makespan);
  EXPECT_LT(eval.simulate(cons.schedule, cons.layouts).makespan,
            eval.simulate(scat.schedule, scat.layouts).makespan);
}

TEST(Timeline, HybridReducesGlobalTrafficForDataParallelIrk) {
  // Fig. 18 (left): the hybrid data-parallel IRK beats pure MPI because the
  // global allgathers involve one rank per node instead of four.
  ode::SolverGraphSpec spec;
  spec.method = ode::Method::IRK;
  spec.n = 1 << 16;
  spec.stages = 4;
  spec.iterations = 2;
  const arch::Machine m = machine(32);
  const cost::CostModel cm(m);
  const LayeredSchedule dp =
      DataParallelScheduler(cm).schedule(spec.step_graph(), 128);
  const std::vector<cost::LayerLayout> layouts =
      map::map_schedule(dp, m, map::Strategy::Consecutive);
  const TimelineEvaluator eval(cm);
  TimelineOptions pure;
  TimelineOptions hybrid;
  hybrid.threads_per_rank = 4;
  EXPECT_LT(eval.evaluate(dp, layouts, hybrid).makespan,
            eval.evaluate(dp, layouts, pure).makespan);
}

TEST(Timeline, HybridSimulationReducesNicTrafficForDataParallelIrk) {
  // The hybrid effect must also show up in the discrete-event path: fewer
  // ranks in the global allgathers -> less per-node NIC traffic -> shorter
  // simulated makespan.
  ode::SolverGraphSpec spec;
  spec.method = ode::Method::IRK;
  spec.n = 1 << 16;
  spec.stages = 4;
  spec.iterations = 2;
  const arch::Machine m = machine(32);
  const cost::CostModel cm(m);
  const LayeredSchedule dp =
      DataParallelScheduler(cm).schedule(spec.step_graph(), 128);
  const std::vector<cost::LayerLayout> layouts =
      map::map_schedule(dp, m, map::Strategy::Consecutive);
  const TimelineEvaluator eval(cm);
  TimelineOptions pure;
  TimelineOptions hybrid;
  hybrid.threads_per_rank = 4;
  const sim::SimResult sp = eval.simulate(dp, layouts, pure);
  const sim::SimResult sh = eval.simulate(dp, layouts, hybrid);
  EXPECT_LT(sh.makespan, sp.makespan);
  EXPECT_LT(sh.traffic.bytes_inter_node, sp.traffic.bytes_inter_node);
}

TEST(Timeline, HybridHurtsBroadcastHeavyDataParallelDiirk) {
  // Fig. 18 (right): data-parallel DIIRK slows down under hybrid execution
  // because each of its many broadcasts pays a team fork/join.
  ode::SolverGraphSpec spec;
  spec.method = ode::Method::DIIRK;
  spec.n = 1 << 12;
  spec.stages = 4;
  spec.iterations = 2;
  spec.inner_iterations = 3;
  const arch::Machine m = machine(32);
  const cost::CostModel cm(m);
  const LayeredSchedule dp =
      DataParallelScheduler(cm).schedule(spec.step_graph(), 128);
  const std::vector<cost::LayerLayout> layouts =
      map::map_schedule(dp, m, map::Strategy::Consecutive);
  const TimelineEvaluator eval(cm);
  TimelineOptions pure;
  TimelineOptions hybrid;
  hybrid.threads_per_rank = 4;
  EXPECT_GT(eval.evaluate(dp, layouts, hybrid).makespan,
            eval.evaluate(dp, layouts, pure).makespan);
}

TEST(Timeline, MaxExplicitRepeatsKeepsSimulationTractable) {
  // DIIRK with thousands of broadcasts must still simulate quickly; the
  // residual repetitions are charged as busy time, so the makespan remains
  // close to the fully analytic value.
  ode::SolverGraphSpec spec;
  spec.method = ode::Method::DIIRK;
  spec.n = 1 << 12;
  spec.stages = 4;
  spec.iterations = 2;
  spec.inner_iterations = 2;
  const arch::Machine m = machine();
  const cost::CostModel cm(m);
  const Mapped mapped = schedule_and_map(spec.step_graph(), m, cm, 32,
                                         map::Strategy::Consecutive);
  const TimelineEvaluator eval(cm);
  TimelineOptions opts;
  opts.max_explicit_repeats = 2;
  const sim::SimResult result =
      eval.simulate(mapped.schedule, mapped.layouts, opts);
  EXPECT_GT(result.makespan, 0.0);
  // The explicit message count stays far below (n-1)*I lowered messages.
  EXPECT_LT(result.transfers, 100000u);
}

TEST(Timeline, LayoutCountMustMatch) {
  ode::SolverGraphSpec spec;
  spec.method = ode::Method::PAB;
  spec.n = 1 << 12;
  spec.stages = 4;
  const arch::Machine m = machine();
  const cost::CostModel cm(m);
  const Mapped mapped = schedule_and_map(spec.step_graph(), m, cm, 16,
                                         map::Strategy::Consecutive);
  const TimelineEvaluator eval(cm);
  std::vector<cost::LayerLayout> wrong;
  EXPECT_THROW(eval.evaluate(mapped.schedule, wrong), std::invalid_argument);
  EXPECT_THROW(eval.simulate(mapped.schedule, wrong), std::invalid_argument);
}

}  // namespace
}  // namespace ptask::sched
