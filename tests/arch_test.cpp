// Tests for the architecture model: machine presets, core index arithmetic,
// communication levels, and the explicit architecture tree (paper Fig. 7).

#include <gtest/gtest.h>

#include "ptask/arch/machine.hpp"
#include "ptask/arch/topology.hpp"

namespace ptask::arch {
namespace {

TEST(MachineSpec, PresetDimensionsMatchPaper) {
  const MachineSpec c = chic();
  EXPECT_EQ(c.num_nodes, 530);
  EXPECT_EQ(c.procs_per_node, 2);
  EXPECT_EQ(c.cores_per_proc, 2);
  EXPECT_DOUBLE_EQ(c.core_flops, 5.2e9);

  const MachineSpec j = juropa();
  EXPECT_EQ(j.num_nodes, 2208);
  EXPECT_EQ(j.cores_per_node(), 8);
  EXPECT_DOUBLE_EQ(j.core_flops, 11.72e9);

  const MachineSpec a = altix();
  EXPECT_EQ(a.num_nodes, 128);
  EXPECT_EQ(a.cores_per_node(), 4);
  EXPECT_DOUBLE_EQ(a.core_flops, 6.4e9);
}

TEST(MachineSpec, InterconnectHierarchyIsOrdered) {
  // Deeper levels must be faster: lower latency and higher bandwidth.
  for (const MachineSpec& s : {chic(), juropa(), altix()}) {
    EXPECT_LT(s.intra_processor.latency_s, s.intra_node.latency_s) << s.name;
    EXPECT_LT(s.intra_node.latency_s, s.inter_node.latency_s) << s.name;
    EXPECT_GT(s.intra_processor.bandwidth_Bps, s.intra_node.bandwidth_Bps)
        << s.name;
    EXPECT_GT(s.intra_node.bandwidth_Bps, s.inter_node.bandwidth_Bps)
        << s.name;
  }
}

TEST(MachineSpec, LookupByName) {
  EXPECT_EQ(machine_by_name("chic").name, "CHiC");
  EXPECT_EQ(machine_by_name("JuRoPA").name, "JuRoPA");
  EXPECT_EQ(machine_by_name("ALTIX").name, "Altix");
  EXPECT_THROW(machine_by_name("bluegene"), std::invalid_argument);
}

TEST(LinkParams, TransferTimeIsAffine) {
  const LinkParams link{2.0e-6, 1.0e9};
  EXPECT_DOUBLE_EQ(link.transfer_time(0), 2.0e-6);
  EXPECT_DOUBLE_EQ(link.transfer_time(1'000'000), 2.0e-6 + 1.0e-3);
}

TEST(Machine, FlatIndexRoundTrips) {
  const Machine m(chic());
  for (int flat : {0, 1, 2, 3, 4, 7, 100, m.total_cores() - 1}) {
    EXPECT_EQ(m.flat_index(m.core_at(flat)), flat);
  }
  EXPECT_THROW(m.core_at(-1), std::out_of_range);
  EXPECT_THROW(m.core_at(m.total_cores()), std::out_of_range);
}

TEST(Machine, ConsecutiveEnumerationIsNodeMajor) {
  const Machine m(chic());  // 2 procs x 2 cores per node
  EXPECT_EQ(m.core_at(0).label(), "1.1.1");
  EXPECT_EQ(m.core_at(1).label(), "1.1.2");
  EXPECT_EQ(m.core_at(2).label(), "1.2.1");
  EXPECT_EQ(m.core_at(3).label(), "1.2.2");
  EXPECT_EQ(m.core_at(4).label(), "2.1.1");
}

TEST(Machine, CommLevels) {
  const Machine m(chic());
  const CoreId a = m.core_at(0);   // 1.1.1
  const CoreId b = m.core_at(1);   // 1.1.2 same proc
  const CoreId c = m.core_at(2);   // 1.2.1 same node
  const CoreId d = m.core_at(4);   // 2.1.1 other node
  EXPECT_EQ(m.comm_level(a, b), CommLevel::SameProcessor);
  EXPECT_EQ(m.comm_level(a, c), CommLevel::SameNode);
  EXPECT_EQ(m.comm_level(a, d), CommLevel::InterNode);
  EXPECT_EQ(m.comm_level(a, a), CommLevel::SameProcessor);
  // Symmetry.
  EXPECT_EQ(m.comm_level(d, a), CommLevel::InterNode);
}

TEST(Machine, PtpTimeUsesTheSharedLevel) {
  const Machine m(juropa());
  const std::size_t bytes = 64 * 1024;
  const double intra = m.ptp_time(m.core_at(0), m.core_at(1), bytes);
  const double node = m.ptp_time(m.core_at(0), m.core_at(4), bytes);
  const double inter = m.ptp_time(m.core_at(0), m.core_at(8), bytes);
  EXPECT_LT(intra, node);
  EXPECT_LT(node, inter);
}

TEST(Machine, PartitionKeepsNodeStructure) {
  const Machine m(chic());
  const Machine part = m.partition(64);
  EXPECT_EQ(part.total_cores(), 64);
  EXPECT_EQ(part.num_nodes(), 16);
  EXPECT_EQ(part.cores_per_node(), 4);
  EXPECT_THROW(m.partition(3), std::invalid_argument);      // not whole nodes
  EXPECT_THROW(m.partition(0), std::invalid_argument);
  EXPECT_THROW(m.partition(530 * 4 + 4), std::invalid_argument);  // too large
}

TEST(Machine, RejectsBadSpecs) {
  MachineSpec s = chic();
  s.num_nodes = 0;
  EXPECT_THROW(Machine{s}, std::invalid_argument);
}

class ArchitectureTreeTest : public ::testing::Test {
 protected:
  ArchitectureTreeTest() : machine_(chic().name == "CHiC" ? chic() : chic()) {
    MachineSpec small = chic();
    small.num_nodes = 3;
    spec_ = small;
  }
  MachineSpec machine_;
  MachineSpec spec_;
};

TEST_F(ArchitectureTreeTest, StructureCounts) {
  const ArchitectureTree tree(spec_);
  // 1 root + 3 nodes + 6 processors + 12 cores.
  EXPECT_EQ(tree.size(), 1u + 3u + 6u + 12u);
  EXPECT_EQ(tree.num_leaves(), 12);
  EXPECT_EQ(tree.root().level, TreeLevel::Machine);
  EXPECT_EQ(tree.root().children.size(), 3u);
}

TEST_F(ArchitectureTreeTest, LabelsFollowFig7) {
  const ArchitectureTree tree(spec_);
  EXPECT_EQ(tree.root().label, "A");
  const TreeVertex& first_core = tree.vertex(tree.leaf_of(0));
  EXPECT_EQ(first_core.label, "A.1.1.1");
  const TreeVertex& last_core = tree.vertex(tree.leaf_of(11));
  EXPECT_EQ(last_core.label, "A.3.2.2");
}

TEST_F(ArchitectureTreeTest, CommonAncestorLevels) {
  const ArchitectureTree tree(spec_);
  // Cores 0 and 1: same processor.
  EXPECT_EQ(tree.vertex(tree.common_ancestor(0, 1)).level,
            TreeLevel::Processor);
  // Cores 0 and 2: same node.
  EXPECT_EQ(tree.vertex(tree.common_ancestor(0, 2)).level, TreeLevel::Node);
  // Cores 0 and 4: machine.
  EXPECT_EQ(tree.vertex(tree.common_ancestor(0, 4)).level,
            TreeLevel::Machine);
  // A core with itself.
  EXPECT_EQ(tree.vertex(tree.common_ancestor(5, 5)).level, TreeLevel::Core);
}

TEST_F(ArchitectureTreeTest, CommLevelMatchesMachine) {
  const ArchitectureTree tree(spec_);
  const Machine m(spec_);
  for (int a = 0; a < m.total_cores(); ++a) {
    for (int b = 0; b < m.total_cores(); ++b) {
      EXPECT_EQ(tree.comm_level(a, b),
                m.comm_level(m.core_at(a), m.core_at(b)))
          << "cores " << a << ", " << b;
    }
  }
}

TEST_F(ArchitectureTreeTest, DepthsAreUniformAtEachLevel) {
  const ArchitectureTree tree(spec_);
  for (std::size_t i = 0; i < tree.size(); ++i) {
    const TreeVertex& v = tree.vertex(static_cast<int>(i));
    EXPECT_EQ(tree.depth(static_cast<int>(i)), static_cast<int>(v.level));
  }
}

TEST_F(ArchitectureTreeTest, OutlineMentionsEveryVertex) {
  const ArchitectureTree tree(spec_);
  const std::string outline = tree.to_outline();
  EXPECT_NE(outline.find("machine A"), std::string::npos);
  EXPECT_NE(outline.find("core A.3.2.2"), std::string::npos);
}

// Property sweep: flat index arithmetic is a bijection on every preset.
class MachineParamTest : public ::testing::TestWithParam<const char*> {};

TEST_P(MachineParamTest, CoreEnumerationIsBijective) {
  MachineSpec spec = machine_by_name(GetParam());
  spec.num_nodes = 5;  // keep the sweep small
  const Machine m(spec);
  std::vector<bool> seen(static_cast<std::size_t>(m.total_cores()), false);
  for (int flat = 0; flat < m.total_cores(); ++flat) {
    const CoreId id = m.core_at(flat);
    const int back = m.flat_index(id);
    EXPECT_EQ(back, flat);
    EXPECT_FALSE(seen[static_cast<std::size_t>(back)]);
    seen[static_cast<std::size_t>(back)] = true;
  }
}

INSTANTIATE_TEST_SUITE_P(AllMachines, MachineParamTest,
                         ::testing::Values("chic", "juropa", "altix"));

}  // namespace
}  // namespace ptask::arch
