// Property-based tests: randomized task graphs, distributions, and
// collective patterns checked against structural invariants, with a
// deterministic seeded generator so failures reproduce.
//
// Seeds are fixed by default; setting PTASK_FUZZ_SEED mixes an override into
// every parameterized seed (XOR, so behaviour with the variable unset is
// bit-identical to not having the override at all).  Every test announces
// its effective seed via SCOPED_TRACE, so a failure log always carries the
// numbers needed to reproduce it.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "ptask/core/graph_algorithms.hpp"
#include "ptask/fuzz/rng.hpp"
#include "ptask/dist/redistribution.hpp"
#include "ptask/map/mapping.hpp"
#include "ptask/net/collectives.hpp"
#include "ptask/ode/graph_gen.hpp"
#include "ptask/sched/cpa_scheduler.hpp"
#include "ptask/sched/cpr_scheduler.hpp"
#include "ptask/sched/layer_scheduler.hpp"
#include "ptask/sched/timeline.hpp"
#include "ptask/sched/validation.hpp"

namespace ptask {
namespace {

// Shared deterministic PRNG (SplitMix64, identical across platforms).
using Rng = fuzz::Rng;

/// Random DAG: forward edges only, random works, some comm ops.
core::TaskGraph random_graph(Rng& rng, int n_tasks) {
  core::TaskGraph g;
  for (int i = 0; i < n_tasks; ++i) {
    core::MTask t("t" + std::to_string(i),
                  rng.uniform_real(1e7, 5e9));
    if (rng.chance(0.5)) {
      t.add_comm(core::CollectiveOp{
          core::CollectiveKind::Allgather,
          rng.chance(0.3) ? core::CommScope::Orthogonal
                          : core::CommScope::Group,
          static_cast<std::size_t>(rng.uniform(1, 64)) * 1024,
          rng.uniform(1, 4)});
    }
    if (rng.chance(0.2)) t.set_max_cores(rng.uniform(1, 64));
    g.add_task(std::move(t));
  }
  for (int to = 1; to < n_tasks; ++to) {
    const int edges = rng.uniform(0, std::min(3, to));
    for (int e = 0; e < edges; ++e) {
      const int from = rng.uniform(0, to - 1);
      if (!g.has_edge(from, to)) g.add_edge(from, to);
    }
  }
  return g;
}

arch::Machine machine(int nodes = 16) {
  arch::MachineSpec spec = arch::chic();
  spec.num_nodes = nodes;
  return arch::Machine(spec);
}

class RandomGraphTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  /// Effective seed for this test instance: the suite parameter, the
  /// optional PTASK_FUZZ_SEED override, and a per-test stream constant (so
  /// sibling tests on the same parameter see unrelated randomness).
  std::uint64_t seed(std::uint64_t stream = 0) const {
    return GetParam() ^ fuzz::seed_from_env(0) ^ stream;
  }

  /// Reproduction breadcrumb attached to every failure in scope.
  ::testing::Message trace(std::uint64_t effective) const {
    return ::testing::Message()
           << "rng seed " << effective << " (param " << GetParam()
           << ", PTASK_FUZZ_SEED override " << fuzz::seed_from_env(0) << ")";
  }
};

TEST_P(RandomGraphTest, AllSchedulersProduceValidSchedules) {
  SCOPED_TRACE(trace(seed()));
  Rng rng(seed());
  const int n_tasks = rng.uniform(3, 40);
  const core::TaskGraph g = random_graph(rng, n_tasks);
  const int cores = 4 * rng.uniform(1, 16);
  const arch::Machine m = machine();
  const cost::CostModel cm(m);

  const sched::LayeredSchedule layered =
      sched::LayerScheduler(cm).schedule(g, cores);
  const sched::ValidationReport lr = sched::validate(layered, g);
  EXPECT_TRUE(lr.ok()) << lr.errors.front();
  EXPECT_GT(layered.predicted_makespan, 0.0);

  const sched::CpaResult cpa = sched::CpaScheduler(cm).schedule(g, cores);
  EXPECT_TRUE(sched::validate(cpa.schedule, g).ok());
  const sched::CpaResult mcpa = sched::McpaScheduler(cm).schedule(g, cores);
  EXPECT_TRUE(sched::validate(mcpa.schedule, g).ok());
  const sched::CprResult cpr = sched::CprScheduler(cm).schedule(g, cores);
  EXPECT_TRUE(sched::validate(cpr.schedule, g).ok());
}

TEST_P(RandomGraphTest, MappingsAreAlwaysDisjointPermutationSlices) {
  SCOPED_TRACE(trace(seed(0x9E3779B97F4A7C15ull)));
  Rng rng(seed(0x9E3779B97F4A7C15ull));
  const core::TaskGraph g = random_graph(rng, rng.uniform(3, 25));
  const int cores = 4 * rng.uniform(1, 16);
  const arch::Machine m = machine();
  const cost::CostModel cm(m);
  const sched::LayeredSchedule s = sched::LayerScheduler(cm).schedule(g, cores);
  for (map::Strategy strategy :
       {map::Strategy::Consecutive, map::Strategy::Scattered,
        map::Strategy::Mixed}) {
    const std::vector<cost::LayerLayout> layouts =
        map::map_schedule(s, m, strategy, 2);
    for (const cost::LayerLayout& layout : layouts) {
      std::set<int> seen;
      for (const cost::GroupLayout& group : layout.groups) {
        for (int core : group.cores) {
          EXPECT_TRUE(seen.insert(core).second) << "core mapped twice";
          EXPECT_GE(core, 0);
          EXPECT_LT(core, m.total_cores());
        }
      }
      EXPECT_EQ(static_cast<int>(seen.size()), cores);
    }
  }
}

TEST_P(RandomGraphTest, ChainContractionPreservesWorkAndReachability) {
  SCOPED_TRACE(trace(seed(0xD1B54A32D192ED03ull)));
  Rng rng(seed(0xD1B54A32D192ED03ull));
  const core::TaskGraph g = random_graph(rng, rng.uniform(4, 60));
  const core::ChainContraction cc = core::contract_linear_chains(g);
  EXPECT_NEAR(cc.contracted.total_work_flop(), g.total_work_flop(),
              g.total_work_flop() * 1e-12);
  // Every original task is covered exactly once.
  std::vector<int> covered(static_cast<std::size_t>(g.num_tasks()), 0);
  for (const std::vector<core::TaskId>& members : cc.members) {
    for (core::TaskId id : members) covered[static_cast<std::size_t>(id)]++;
  }
  for (int c : covered) EXPECT_EQ(c, 1);
  // Reachability between chain representatives is preserved.
  for (core::TaskId a = 0; a < g.num_tasks(); ++a) {
    for (core::TaskId b = 0; b < g.num_tasks(); ++b) {
      const core::TaskId ca = cc.representative[static_cast<std::size_t>(a)];
      const core::TaskId cb = cc.representative[static_cast<std::size_t>(b)];
      if (ca == cb) continue;
      EXPECT_EQ(g.reaches(a, b), cc.contracted.reaches(ca, cb))
          << "tasks " << a << " -> " << b;
    }
  }
}

TEST_P(RandomGraphTest, LayeringIsAPartitionIntoAntichains) {
  SCOPED_TRACE(trace(seed(0xA0761D6478BD642Full)));
  Rng rng(seed(0xA0761D6478BD642Full));
  const core::TaskGraph g = random_graph(rng, rng.uniform(4, 60));
  std::set<core::TaskId> seen;
  for (const std::vector<core::TaskId>& layer : core::greedy_layers(g)) {
    for (std::size_t i = 0; i < layer.size(); ++i) {
      EXPECT_TRUE(seen.insert(layer[i]).second);
      for (std::size_t j = i + 1; j < layer.size(); ++j) {
        EXPECT_TRUE(g.independent(layer[i], layer[j]));
      }
    }
  }
  EXPECT_EQ(static_cast<int>(seen.size()), g.num_tasks());
}

TEST_P(RandomGraphTest, RedistributionConservesVolume) {
  SCOPED_TRACE(trace(seed(0xE7037ED1A0B428DBull)));
  Rng rng(seed(0xE7037ED1A0B428DBull));
  const std::size_t n = static_cast<std::size_t>(rng.uniform(1, 5000));
  const std::size_t q1 = static_cast<std::size_t>(rng.uniform(1, 24));
  const std::size_t q2 = static_cast<std::size_t>(rng.uniform(1, 24));
  auto pick = [&](Rng& r) {
    switch (r.uniform(0, 2)) {
      case 0:
        return dist::Distribution::block();
      case 1:
        return dist::Distribution::cyclic();
      default:
        return dist::Distribution::block_cyclic(
            static_cast<std::size_t>(r.uniform(1, 9)));
    }
  };
  const dist::Distribution src = pick(rng);
  const dist::Distribution dst = pick(rng);
  const dist::RedistributionPlan plan = dist::RedistributionPlan::compute(
      n, 8, src, q1, dst, q2, /*same_groups=*/false);
  // With disjoint groups, every element moves exactly once: total volume is
  // n elements.
  EXPECT_EQ(plan.total_bytes(), n * 8);
  // Per-destination volume equals the destination's local counts.
  std::vector<std::size_t> per_dst(q2, 0);
  for (const dist::Transfer& t : plan.transfers()) {
    ASSERT_LT(t.src_rank, q1);
    ASSERT_LT(t.dst_rank, q2);
    per_dst[t.dst_rank] += t.bytes;
  }
  for (std::size_t r = 0; r < q2; ++r) {
    EXPECT_EQ(per_dst[r], dst.local_count(r, n, q2) * 8);
  }
}

TEST_P(RandomGraphTest, CollectivesDeliverToEveryRank) {
  SCOPED_TRACE(trace(seed(0x589965CC75374CC3ull)));
  Rng rng(seed(0x589965CC75374CC3ull));
  const int ranks = rng.uniform(2, 40);
  // Bcast coverage: simulate holder propagation.
  {
    const int root = rng.uniform(0, ranks - 1);
    std::set<int> holders{root};
    for (const net::Round& round : net::binomial_bcast(ranks, root, 8)) {
      std::set<int> arrived;
      for (const net::Message& m : round.messages) {
        EXPECT_TRUE(holders.count(m.src));
        arrived.insert(m.dst);
      }
      holders.insert(arrived.begin(), arrived.end());
    }
    EXPECT_EQ(static_cast<int>(holders.size()), ranks);
  }
  // Allgather coverage: every rank must receive n-1 distinct blocks (track
  // block sets through the ring).
  {
    std::vector<std::set<int>> blocks(static_cast<std::size_t>(ranks));
    for (int r = 0; r < ranks; ++r) blocks[static_cast<std::size_t>(r)] = {r};
    for (const net::Round& round : net::ring_allgather(ranks, 8)) {
      std::vector<std::set<int>> next = blocks;
      for (const net::Message& m : round.messages) {
        next[static_cast<std::size_t>(m.dst)].insert(
            blocks[static_cast<std::size_t>(m.src)].begin(),
            blocks[static_cast<std::size_t>(m.src)].end());
      }
      blocks = std::move(next);
    }
    for (const std::set<int>& b : blocks) {
      EXPECT_EQ(static_cast<int>(b.size()), ranks);
    }
  }
}

TEST_P(RandomGraphTest, SimulatedMakespanBoundsHold) {
  SCOPED_TRACE(trace(seed(0x1D8E4E27C47D124Full)));
  Rng rng(seed(0x1D8E4E27C47D124Full));
  const core::TaskGraph g = random_graph(rng, rng.uniform(3, 15));
  const int cores = 4 * rng.uniform(1, 8);
  const arch::Machine m = machine();
  const cost::CostModel cm(m);
  const sched::LayeredSchedule s = sched::LayerScheduler(cm).schedule(g, cores);
  const std::vector<cost::LayerLayout> layouts =
      map::map_schedule(s, m, map::Strategy::Consecutive);
  const sched::TimelineEvaluator eval(cm);
  const sim::SimResult sim = eval.simulate(s, layouts);
  // Work conservation: the simulated makespan is at least the total compute
  // divided by the core count (no simulator can beat perfect speedup) ...
  const double lower =
      g.total_work_flop() / (cm.machine().spec().sustained_flops() * cores);
  EXPECT_GE(sim.makespan * (1.0 + 1e-9), lower);
  // ... and within a generous multiple of the analytic estimate.
  const double analytic = eval.evaluate(s, layouts).makespan;
  EXPECT_LT(sim.makespan, analytic * 10.0 + 1e-6);
  EXPECT_TRUE(std::isfinite(sim.makespan));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u,
                                           55u, 89u));

TEST(RepeatGraph, ChainsStepCopiesWithStateEdges) {
  ode::SolverGraphSpec spec;
  spec.method = ode::Method::EPOL;
  spec.n = 1 << 10;
  spec.stages = 3;
  const core::TaskGraph step = spec.step_graph();  // 6 steps + combine
  const core::TaskGraph program = core::repeat_graph(step, 3);
  EXPECT_EQ(program.num_tasks(), 3 * step.num_tasks());
  // Copy 0's combine feeds every source of copy 1.
  core::TaskId combine0 = core::kInvalidTask, step11_1 = core::kInvalidTask;
  for (core::TaskId id = 0; id < program.num_tasks(); ++id) {
    if (program.task(id).name() == "combine#0") combine0 = id;
    if (program.task(id).name() == "step(1,1)#1") step11_1 = id;
  }
  ASSERT_NE(combine0, core::kInvalidTask);
  ASSERT_NE(step11_1, core::kInvalidTask);
  EXPECT_TRUE(program.has_edge(combine0, step11_1));
  // A three-step program is schedulable and valid.
  const arch::Machine m = machine();
  const cost::CostModel cm(m);
  const sched::LayeredSchedule s = sched::LayerScheduler(cm).schedule(program, 16);
  EXPECT_TRUE(sched::validate(s, program).ok());
  // Layer count: 2 per step (chains + combine).
  EXPECT_EQ(s.layers.size(), 6u);
}

TEST(RepeatGraph, SingleRepetitionIsACopy) {
  ode::SolverGraphSpec spec;
  spec.method = ode::Method::PAB;
  spec.n = 1 << 10;
  spec.stages = 4;
  const core::TaskGraph step = spec.step_graph();
  const core::TaskGraph program = core::repeat_graph(step, 1);
  EXPECT_EQ(program.num_tasks(), step.num_tasks());  // no markers in PAB graph
  EXPECT_THROW(core::repeat_graph(step, 0), std::invalid_argument);
}

}  // namespace
}  // namespace ptask
