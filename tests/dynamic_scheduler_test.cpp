// Tests for the dynamic M-task scheduler (runtime group assignment with
// moldable tasks and recursive task creation).

#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "ptask/rt/dynamic_scheduler.hpp"

namespace ptask::rt {
namespace {

TEST(DynamicScheduler, RunsASingleTaskOnAllCores) {
  DynamicScheduler scheduler(8);
  std::atomic<int> invocations{0};
  std::atomic<int> observed_size{0};
  scheduler.submit(DynamicTask{"solo", 1, INT_MAX, 1.0, [&](ExecContext& ctx) {
                                 invocations++;
                                 observed_size = ctx.group_size;
                                 EXPECT_LT(ctx.group_rank, ctx.group_size);
                               }});
  scheduler.wait();
  // A lone task receives the entire free pool.
  EXPECT_EQ(observed_size.load(), 8);
  EXPECT_EQ(invocations.load(), 8);
  EXPECT_EQ(scheduler.stats().tasks_completed, 1u);
}

TEST(DynamicScheduler, SplitsCoresAmongConcurrentTasks) {
  DynamicScheduler scheduler(8);
  std::atomic<int> max_seen{0};
  for (int i = 0; i < 4; ++i) {
    scheduler.submit(DynamicTask{"t" + std::to_string(i), 1, INT_MAX, 1.0,
                                 [&](ExecContext& ctx) {
                                   int cur = max_seen.load();
                                   while (cur < ctx.group_size &&
                                          !max_seen.compare_exchange_weak(
                                              cur, ctx.group_size)) {
                                   }
                                 }});
  }
  scheduler.wait();
  const DynamicSchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.tasks_completed, 4u);
  // Equal hints: roughly equal groups; nothing larger than the pool allows.
  EXPECT_LE(stats.largest_group, 8);
  EXPECT_GE(stats.smallest_group, 1);
}

TEST(DynamicScheduler, RespectsMoldabilityBounds) {
  DynamicScheduler scheduler(8);
  std::atomic<int> size_a{0}, size_b{0};
  scheduler.submit(DynamicTask{"capped", 1, 2, 100.0, [&](ExecContext& ctx) {
                                 size_a = ctx.group_size;
                               }});
  scheduler.wait();
  scheduler.submit(DynamicTask{"wide", 4, 8, 1.0, [&](ExecContext& ctx) {
                                 size_b = ctx.group_size;
                               }});
  scheduler.wait();
  EXPECT_LE(size_a.load(), 2);   // max_cores respected despite huge hint
  EXPECT_GE(size_b.load(), 4);   // min_cores respected
}

TEST(DynamicScheduler, WorkHintsSkewTheSplit) {
  // Submit a heavy and a light task while all cores are busy, so both are
  // pending when the cores free up and the proportional split applies.
  DynamicScheduler scheduler(8);
  Barrier gate(9);  // 8 blocker members + the test thread
  scheduler.submit(DynamicTask{"blocker", 8, 8, 1.0, [&](ExecContext&) {
                                 gate.arrive_and_wait();
                               }});
  std::atomic<int> heavy_size{0}, light_size{0};
  scheduler.submit(DynamicTask{"heavy", 1, INT_MAX, 3.0,
                               [&](ExecContext& ctx) {
                                 heavy_size = ctx.group_size;
                               }});
  scheduler.submit(DynamicTask{"light", 1, INT_MAX, 1.0,
                               [&](ExecContext& ctx) {
                                 light_size = ctx.group_size;
                               }});
  gate.arrive_and_wait();  // release the blocker
  scheduler.wait();
  EXPECT_EQ(heavy_size.load(), 6);  // 8 * 3/4
  EXPECT_GE(light_size.load(), 2);  // the rest (light dispatches after)
}

TEST(DynamicScheduler, GroupCommWorksInsideDynamicTasks) {
  DynamicScheduler scheduler(6);
  std::atomic<double> reduced{0.0};
  scheduler.submit(DynamicTask{"reduce", 6, 6, 1.0, [&](ExecContext& ctx) {
                                 const double sum = ctx.comm->allreduce_sum(
                                     ctx.group_rank, ctx.group_rank + 1.0);
                                 if (ctx.group_rank == 0) reduced = sum;
                               }});
  scheduler.wait();
  EXPECT_DOUBLE_EQ(reduced.load(), 21.0);  // 1+2+...+6
}

TEST(DynamicScheduler, RecursiveDivideAndConquer) {
  // Sum an array by recursive task splitting: each task either sums its
  // range directly (small) or spawns two children -- the dynamic/recursive
  // creation pattern the paper attributes to the Tlib library.
  const int n = 1 << 12;
  std::vector<double> data(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) data[static_cast<std::size_t>(i)] = i % 17;
  double expected = 0.0;
  for (double v : data) expected += v;

  DynamicScheduler scheduler(4);
  std::atomic<double> total{0.0};
  std::function<void(int, int)> spawn = [&](int lo, int hi) {
    scheduler.submit(DynamicTask{
        "sum", 1, 2, static_cast<double>(hi - lo), [&, lo, hi](ExecContext& ctx) {
          if (hi - lo <= 256) {
            if (ctx.group_rank == 0) {
              double local = 0.0;
              for (int i = lo; i < hi; ++i) {
                local += data[static_cast<std::size_t>(i)];
              }
              double cur = total.load();
              while (!total.compare_exchange_weak(cur, cur + local)) {
              }
            }
          } else if (ctx.group_rank == 0) {
            const int mid = lo + (hi - lo) / 2;
            spawn(lo, mid);
            spawn(mid, hi);
          }
        }});
  };
  spawn(0, n);
  scheduler.wait();
  EXPECT_DOUBLE_EQ(total.load(), expected);
  EXPECT_GE(scheduler.stats().tasks_completed, 16u);
}

TEST(DynamicScheduler, IsReusableAfterWait) {
  DynamicScheduler scheduler(4);
  std::atomic<int> count{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 5; ++i) {
      scheduler.submit(DynamicTask{"t", 1, 1, 1.0,
                                   [&](ExecContext&) { count++; }});
    }
    scheduler.wait();
  }
  EXPECT_EQ(count.load(), 15);
  EXPECT_EQ(scheduler.stats().tasks_completed, 15u);
}

TEST(DynamicScheduler, NeverOversubscribesCores) {
  DynamicScheduler scheduler(6);
  std::atomic<int> active{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 20; ++i) {
    scheduler.submit(DynamicTask{"t", 1, 3, 1.0, [&](ExecContext&) {
                                   const int now = ++active;
                                   int cur = peak.load();
                                   while (cur < now &&
                                          !peak.compare_exchange_weak(cur,
                                                                      now)) {
                                   }
                                   --active;
                                 }});
  }
  scheduler.wait();
  EXPECT_LE(peak.load(), 6);
  EXPECT_EQ(scheduler.stats().tasks_completed, 20u);
}

TEST(DynamicScheduler, ValidatesTasks) {
  DynamicScheduler scheduler(2);
  EXPECT_THROW(scheduler.submit(DynamicTask{"big", 3, 4, 1.0, {}}),
               std::invalid_argument);
  EXPECT_THROW(scheduler.submit(DynamicTask{"bad", 2, 1, 1.0, {}}),
               std::invalid_argument);
  EXPECT_THROW(DynamicScheduler(0), std::invalid_argument);
}

TEST(DynamicScheduler, WaitWithNothingSubmittedReturns) {
  DynamicScheduler scheduler(2);
  scheduler.wait();
  EXPECT_EQ(scheduler.stats().tasks_completed, 0u);
}

}  // namespace
}  // namespace ptask::rt
