// Tests for the incremental scheduling core: the re-entrant pass pipeline
// (PassContext memo reuse), the IncrementalScheduler session API
// (reset/extend over online graph deltas), and the differential oracle --
// an incrementally repaired schedule must be *byte-identical* under
// serve::serialize_schedule to a full re-schedule of the accumulated graph,
// and every spliced schedule must certify like a monolithic one.
//
// Reproduction: the randomized sweeps derive all instances from the base
// seed; re-run with PTASK_FUZZ_SEED=<seed> PTASK_FUZZ_INSTANCES=1 to
// regenerate a failing stream first.

#include <gtest/gtest.h>

#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "ptask/analysis/certifier.hpp"
#include "ptask/analysis/diagnostics.hpp"
#include "ptask/arch/machine.hpp"
#include "ptask/cost/cost_model.hpp"
#include "ptask/fuzz/generator.hpp"
#include "ptask/fuzz/rng.hpp"
#include "ptask/sched/incremental.hpp"
#include "ptask/sched/pipeline.hpp"
#include "ptask/sched/registry.hpp"
#include "ptask/serve/protocol.hpp"

namespace ptask::sched {
namespace {

std::uint64_t base_seed() { return fuzz::seed_from_env(fuzz::kDefaultFuzzSeed); }

int instance_count() {
  if (const char* env = std::getenv("PTASK_FUZZ_INSTANCES");
      env != nullptr && *env != '\0') {
    const long value = std::strtol(env, nullptr, 10);
    if (value > 0) return static_cast<int>(value);
  }
  return 40;
}

arch::Machine test_machine() {
  arch::MachineSpec spec = arch::machine_by_name("chic");
  spec.num_nodes = 4;
  return arch::Machine(spec);
}

core::MTask work_task(const std::string& name, double flop) {
  return core::MTask(name, flop);
}

/// A two-diamond layered graph: 0 -> {1,2} -> 3 -> {4,5} -> 6.
core::TaskGraph diamond_chain() {
  core::TaskGraph g;
  for (int i = 0; i < 7; ++i) {
    g.add_task(work_task("t" + std::to_string(i), 1.0e8 * (i + 1)));
  }
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(3, 5);
  g.add_edge(4, 6);
  g.add_edge(5, 6);
  return g;
}

GraphDelta tail_delta(double release, core::TaskId attach_to,
                      core::TaskId next_id) {
  GraphDelta delta;
  delta.release_time = release;
  for (int i = 0; i < 2; ++i) {
    ArrivingTask arriving;
    arriving.task = work_task("a" + std::to_string(i), 3.0e8);
    arriving.release_time = release + 0.1 * i;
    arriving.priority = i;
    delta.tasks.push_back(std::move(arriving));
  }
  delta.edges = {{attach_to, next_id}, {attach_to, next_id + 1}};
  return delta;
}

// ---------------------------------------------------------------------------
// Handmade deltas: local repair, splice annotation, error paths.
// ---------------------------------------------------------------------------

TEST(IncrementalScheduler, ExtendMatchesFullRescheduleOnHandmadeGraph) {
  const arch::Machine machine = test_machine();
  const cost::CostModel cost(machine);
  IncrementalScheduler inc(cost);
  inc.reset(diamond_chain(), 32);

  // Hang two new tasks off the sink: only the tail of the schedule can
  // change, so the repair must reuse a settled prefix.
  const Schedule& spliced = inc.extend(tail_delta(1.0, 6, 7));
  const Schedule full = inc.run(inc.graph(), 32);
  EXPECT_EQ(serve::serialize_schedule(spliced),
            serve::serialize_schedule(full));

  const RepairStats& stats = inc.last_stats();
  EXPECT_EQ(stats.total_layers, spliced.num_layers());
  EXPECT_EQ(stats.layers_reused + stats.layers_scheduled, stats.total_layers);
  EXPECT_GT(stats.layers_reused, 0u) << "tail delta must not rebuild the head";
  EXPECT_GT(stats.settled_prefix, 0u);
  EXPECT_EQ(stats.delta_tasks, 2u);
  EXPECT_EQ(stats.delta_edges, 2u);
  EXPECT_EQ(spliced.settled_prefix_layers, stats.settled_prefix);
  // The full re-schedule agrees with the spliced one on at least the prefix.
  EXPECT_GE(common_layer_prefix(spliced, full), stats.settled_prefix);
  // A one-shot run is offline: no splice annotation.
  EXPECT_EQ(full.settled_prefix_layers, 0u);
}

TEST(IncrementalScheduler, NoOpExtendIsBitIdenticalAndReusesEveryLayer) {
  const arch::Machine machine = test_machine();
  const cost::CostModel cost(machine);
  IncrementalScheduler inc(cost);
  inc.reset(diamond_chain(), 32);
  const std::string before = serve::serialize_schedule(inc.current());
  const std::size_t layers = inc.current().num_layers();

  GraphDelta empty;
  empty.release_time = 5.0;
  const Schedule& after = inc.extend(empty);
  EXPECT_EQ(serve::serialize_schedule(after), before);
  EXPECT_EQ(inc.last_stats().layers_reused, layers);
  EXPECT_EQ(inc.last_stats().layers_scheduled, 0u);
  EXPECT_EQ(inc.last_stats().settled_prefix, layers);
  EXPECT_EQ(after.settled_prefix_layers, layers);
}

TEST(IncrementalScheduler, InvalidDeltasThrowAndLeaveTheSessionUntouched) {
  const arch::Machine machine = test_machine();
  const cost::CostModel cost(machine);
  IncrementalScheduler inc(cost);

  GraphDelta premature;
  EXPECT_THROW(inc.extend(premature), DeltaError);

  inc.reset(diamond_chain(), 32, /*release_time=*/2.0);
  const std::string before = serve::serialize_schedule(inc.current());
  const int tasks_before = inc.graph().num_tasks();

  const auto expect_rejected = [&](const GraphDelta& delta) {
    EXPECT_THROW(inc.extend(delta), DeltaError);
    EXPECT_EQ(serve::serialize_schedule(inc.current()), before)
        << "a rejected delta must not perturb the settled schedule";
    EXPECT_EQ(inc.graph().num_tasks(), tasks_before)
        << "a rejected delta must not grow the accumulated graph";
  };

  {  // Edge endpoint beyond the accumulated graph + this batch.
    GraphDelta delta;
    delta.release_time = 3.0;
    delta.edges = {{0, 99}};
    expect_rejected(delta);
  }
  {  // Self edge.
    GraphDelta delta;
    delta.release_time = 3.0;
    delta.edges = {{4, 4}};
    expect_rejected(delta);
  }
  {  // A cycle inside the batch.
    GraphDelta delta;
    delta.release_time = 3.0;
    ArrivingTask a;
    a.task = work_task("x0", 1.0e8);
    a.release_time = 3.0;
    ArrivingTask b;
    b.task = work_task("x1", 1.0e8);
    b.release_time = 3.0;
    delta.tasks.push_back(std::move(a));
    delta.tasks.push_back(std::move(b));
    delta.edges = {{7, 8}, {8, 7}};
    expect_rejected(delta);
  }
  {  // Batch release behind the last accepted batch.
    GraphDelta delta;
    delta.release_time = 1.0;
    expect_rejected(delta);
  }
  {  // Task released before its batch.
    GraphDelta delta;
    delta.release_time = 4.0;
    ArrivingTask early;
    early.task = work_task("early", 1.0e8);
    early.release_time = 3.5;
    delta.tasks.push_back(std::move(early));
    expect_rejected(delta);
  }

  // The session still works after every rejection.
  const Schedule& spliced = inc.extend(tail_delta(6.0, 6, 7));
  EXPECT_EQ(serve::serialize_schedule(spliced),
            serve::serialize_schedule(inc.run(inc.graph(), 32)));
}

TEST(IncrementalScheduler, DescribeReportsTaskCountsAndSpliceBoundary) {
  const arch::Machine machine = test_machine();
  const cost::CostModel cost(machine);
  IncrementalScheduler inc(cost);
  inc.reset(diamond_chain(), 32);
  inc.extend(tail_delta(1.0, 6, 7));
  ASSERT_GT(inc.last_stats().settled_prefix, 0u);

  const std::string text = describe(inc.current());
  EXPECT_NE(text.find("task(s)"), std::string::npos)
      << "describe must report per-layer task counts:\n"
      << text;
  EXPECT_NE(text.find("settled prefix"), std::string::npos) << text;
  EXPECT_NE(text.find("settled prefix ends; repaired suffix below"),
            std::string::npos)
      << text;
}

TEST(IncrementalScheduler, OneShotRunMatchesTheLayerStrategyModuloName) {
  const std::uint64_t base = fuzz::substream(base_seed(), 0x1AC5);
  for (int i = 0; i < 8; ++i) {
    const fuzz::Instance instance =
        fuzz::random_instance(fuzz::substream(base, static_cast<std::uint64_t>(i)));
    const arch::Machine machine(instance.machine);
    const cost::CostModel cost(machine);
    SchedulerRegistry& registry = SchedulerRegistry::instance();
    Schedule incremental = registry.make("incremental", cost)->run(
        instance.graph, instance.total_cores);
    const Schedule layer =
        registry.make("layer", cost)->run(instance.graph, instance.total_cores);
    EXPECT_EQ(incremental.strategy, "incremental");
    EXPECT_EQ(layer.strategy, "layer");
    // Same bytes once the only intended difference -- the stamped strategy
    // name -- is aligned.
    incremental.strategy = "layer";
    EXPECT_EQ(serve::serialize_schedule(incremental),
              serve::serialize_schedule(layer))
        << "instance " << i << " (seed " << instance.seed << ", "
        << instance.name << ")";
  }
}

// ---------------------------------------------------------------------------
// Re-entrant pass pipeline: re-running on an unchanged context is a no-op.
// ---------------------------------------------------------------------------

TEST(PassContextReuse, RerunWithoutDeltaIsANoOpAcrossFamiliesAndSeeds) {
  const arch::Machine machine = test_machine();
  const cost::CostModel cost(machine);
  const Pipeline pipeline = Pipeline::algorithm1(cost);
  const std::uint64_t base = fuzz::substream(base_seed(), 0x9E05);
  constexpr int kSeedsPerFamily = 8;

  for (int family = 0; family < 5; ++family) {
    for (int s = 0; s < kSeedsPerFamily; ++s) {
      fuzz::Rng rng(fuzz::substream(
          base, static_cast<std::uint64_t>(family * 100 + s)));
      fuzz::GeneratorParams params;
      core::TaskGraph graph;
      switch (static_cast<fuzz::GraphFamily>(family)) {
        case fuzz::GraphFamily::Layered:
          graph = fuzz::layered_graph(rng, params);
          break;
        case fuzz::GraphFamily::SeriesParallel:
          graph = fuzz::series_parallel_graph(rng, params);
          break;
        case fuzz::GraphFamily::RandomDag:
          graph = fuzz::random_dag(rng, params);
          break;
        case fuzz::GraphFamily::OdeSolver:
          graph = fuzz::ode_solver_graph(rng);
          break;
        case fuzz::GraphFamily::NpbMultiZone:
          graph = fuzz::npb_multizone_graph(rng);
          break;
      }
      PassContext ctx = pipeline.make_context(graph, 64);
      const Schedule first = pipeline.run_with_context(ctx);
      EXPECT_EQ(ctx.layers_reused, 0u) << "first run has nothing to reuse";
      const Schedule second = pipeline.run_with_context(ctx);
      EXPECT_EQ(serve::serialize_schedule(second),
                serve::serialize_schedule(first))
          << fuzz::to_string(static_cast<fuzz::GraphFamily>(family))
          << " seed index " << s;
      EXPECT_EQ(ctx.layers_scheduled, 0u)
          << "re-running an unchanged context must not re-schedule layers";
      EXPECT_EQ(ctx.layers_reused, second.num_layers());
      EXPECT_EQ(ctx.settled_prefix, second.num_layers());
    }
  }
}

// ---------------------------------------------------------------------------
// Differential oracle over fuzz arrival streams.
// ---------------------------------------------------------------------------

TEST(IncrementalOracle, ArrivalStreamsAreBitIdenticalToFullReschedule) {
  const std::uint64_t base = fuzz::substream(base_seed(), 0x10CA);
  const int count = instance_count();
  std::cerr << "[fuzz] incremental oracle: base seed " << base_seed() << " ("
            << count << " streams; override with PTASK_FUZZ_SEED / "
               "PTASK_FUZZ_INSTANCES)\n";
  int extends = 0;
  int reused_layers = 0;
  for (int i = 0; i < count; ++i) {
    const std::uint64_t seed = fuzz::substream(base,
                                               static_cast<std::uint64_t>(i));
    const int batches = 2 + i % 4;  // 2..5 timed batches
    const fuzz::ArrivalStream stream = fuzz::arrival_stream(seed, batches);
    SCOPED_TRACE("stream " + std::to_string(i) + " (seed " +
                 std::to_string(stream.instance.seed) + ", " +
                 stream.instance.name + "); reproduce with PTASK_FUZZ_SEED=" +
                 std::to_string(base_seed()));
    const arch::Machine machine(stream.instance.machine);
    const cost::CostModel cost(machine);
    const int cores = stream.instance.total_cores;

    // Accumulating the stream must reproduce the instance's graph exactly.
    ASSERT_EQ(fuzz::materialize(stream).num_tasks(),
              stream.instance.graph.num_tasks());

    IncrementalScheduler inc(cost);
    inc.reset(stream.initial, cores, stream.initial_release);
    for (const GraphDelta& delta : stream.deltas) {
      inc.extend(delta);
      ++extends;
      reused_layers += static_cast<int>(inc.last_stats().layers_reused);
    }
    ASSERT_EQ(inc.graph().num_tasks(), stream.instance.graph.num_tasks());

    // Oracle 1: bit-identity against a one-shot schedule of the accumulated
    // graph (same strategy, so the serialized strategy name matches too).
    const Schedule full = inc.run(stream.instance.graph, cores);
    EXPECT_EQ(serve::serialize_schedule(inc.current()),
              serve::serialize_schedule(full));

    // Oracle 2: the spliced schedule certifies like a monolithic one.
    const analysis::Certificate cert =
        analysis::certify(stream.instance.graph, inc.current());
    EXPECT_TRUE(cert.ok()) << analysis::render_text(cert.report);
    EXPECT_EQ(cert.report.error_count(), 0);
  }
  EXPECT_GE(extends, count) << "every stream must replay at least one delta";
  EXPECT_GT(reused_layers, 0)
      << "the sweep must exercise actual layer reuse, not just full re-runs";
}

}  // namespace
}  // namespace ptask::sched
