// Tests for the M-task model: task graph, chain contraction, layering,
// critical paths, and the CM-task-style specification builder.

#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "ptask/analysis/analyzer.hpp"
#include "ptask/core/graph_algorithms.hpp"
#include "ptask/core/spec_builder.hpp"
#include "ptask/core/task_graph.hpp"
#include "ptask/ode/graph_gen.hpp"

namespace ptask::core {
namespace {

TaskGraph diamond() {
  // a -> b, a -> c, b -> d, c -> d
  TaskGraph g;
  const TaskId a = g.add_task(MTask("a", 1.0));
  const TaskId b = g.add_task(MTask("b", 2.0));
  const TaskId c = g.add_task(MTask("c", 3.0));
  const TaskId d = g.add_task(MTask("d", 4.0));
  g.add_edge(a, b);
  g.add_edge(a, c);
  g.add_edge(b, d);
  g.add_edge(c, d);
  return g;
}

TEST(TaskGraph, BasicAccounting) {
  const TaskGraph g = diamond();
  EXPECT_EQ(g.num_tasks(), 4);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_EQ(g.in_degree(0), 0);
  EXPECT_EQ(g.out_degree(0), 2);
  EXPECT_EQ(g.in_degree(3), 2);
  EXPECT_DOUBLE_EQ(g.total_work_flop(), 10.0);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
}

TEST(TaskGraph, RejectsCyclesAndSelfEdges) {
  TaskGraph g = diamond();
  EXPECT_THROW(g.add_edge(3, 0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(1, 1), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 99), std::out_of_range);
}

TEST(TaskGraph, DuplicateEdgesIgnored) {
  TaskGraph g = diamond();
  g.add_edge(0, 1);
  EXPECT_EQ(g.num_edges(), 4);
}

TEST(TaskGraph, TopologicalOrderRespectsEdges) {
  const TaskGraph g = diamond();
  const std::vector<TaskId> order = g.topological_order();
  ASSERT_EQ(order.size(), 4u);
  std::vector<int> pos(4);
  for (int i = 0; i < 4; ++i) pos[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = i;
  for (TaskId u = 0; u < 4; ++u) {
    for (TaskId v : g.successors(u)) {
      EXPECT_LT(pos[static_cast<std::size_t>(u)], pos[static_cast<std::size_t>(v)]);
    }
  }
}

TEST(TaskGraph, ReachabilityAndIndependence) {
  const TaskGraph g = diamond();
  EXPECT_TRUE(g.reaches(0, 3));
  EXPECT_FALSE(g.reaches(3, 0));
  EXPECT_TRUE(g.independent(1, 2));
  EXPECT_FALSE(g.independent(0, 3));
  EXPECT_FALSE(g.independent(1, 1));
}

TEST(TaskGraph, StartStopMarkers) {
  TaskGraph g = diamond();
  const auto [start, stop] = g.add_start_stop_markers();
  EXPECT_TRUE(g.task(start).is_marker());
  EXPECT_TRUE(g.task(stop).is_marker());
  EXPECT_EQ(g.in_degree(start), 0);
  EXPECT_EQ(g.out_degree(stop), 0);
  EXPECT_TRUE(g.has_edge(start, 0));
  EXPECT_TRUE(g.has_edge(3, stop));
}

TEST(TaskGraph, DotRenderingContainsNodesAndEdges) {
  const std::string dot = diamond().to_dot("demo");
  EXPECT_NE(dot.find("digraph demo"), std::string::npos);
  EXPECT_NE(dot.find("t0 -> t1"), std::string::npos);
  EXPECT_NE(dot.find("label=\"d\""), std::string::npos);
}

// --- chain contraction (paper Section 3.2 step 1, Fig. 5 left) ---

TEST(ChainContraction, ContractsSimpleChain) {
  TaskGraph g;
  const TaskId a = g.add_task(MTask("a", 1.0));
  const TaskId b = g.add_task(MTask("b", 2.0));
  const TaskId c = g.add_task(MTask("c", 3.0));
  g.add_edge(a, b);
  g.add_edge(b, c);
  const ChainContraction cc = contract_linear_chains(g);
  EXPECT_EQ(cc.contracted.num_tasks(), 1);
  EXPECT_DOUBLE_EQ(cc.contracted.task(0).work_flop(), 6.0);
  EXPECT_EQ(cc.members[0], (std::vector<TaskId>{a, b, c}));
  EXPECT_EQ(cc.representative[a], 0);
  EXPECT_EQ(cc.representative[c], 0);
}

TEST(ChainContraction, DiamondHasNoChains) {
  const ChainContraction cc = contract_linear_chains(diamond());
  EXPECT_EQ(cc.contracted.num_tasks(), 4);
  EXPECT_EQ(cc.contracted.num_edges(), 4);
}

TEST(ChainContraction, EpolStepGraphContractsToApproximationChains) {
  // Fig. 5 (left): the R=4 extrapolation step graph's micro-step chains
  // collapse into 4 nodes plus the combine node.
  ode::SolverGraphSpec spec;
  spec.method = ode::Method::EPOL;
  spec.n = 64;
  spec.stages = 4;
  const TaskGraph g = spec.step_graph();
  EXPECT_EQ(g.num_tasks(), 1 + 2 + 3 + 4 + 1);  // 10 micro steps + combine
  const ChainContraction cc = contract_linear_chains(g);
  EXPECT_EQ(cc.contracted.num_tasks(), 5);
  // The chain for approximation i has i members.
  std::multiset<std::size_t> sizes;
  for (const std::vector<TaskId>& members : cc.members) {
    sizes.insert(members.size());
  }
  EXPECT_EQ(sizes, (std::multiset<std::size_t>{1, 1, 2, 3, 4}));
}

TEST(ChainContraction, AccumulatesCommsAndParams) {
  TaskGraph g;
  MTask a("a", 1.0);
  a.add_comm(CollectiveOp{CollectiveKind::Allgather, CommScope::Group, 100, 2});
  a.add_param(Param{"x", 80, dist::Distribution::replicated(), true, false});
  MTask b("b", 2.0);
  b.add_comm(CollectiveOp{CollectiveKind::Bcast, CommScope::Group, 50, 1});
  b.add_param(Param{"y", 80, dist::Distribution::replicated(), false, true});
  b.set_max_cores(7);
  const TaskId ia = g.add_task(std::move(a));
  const TaskId ib = g.add_task(std::move(b));
  g.add_edge(ia, ib);
  const ChainContraction cc = contract_linear_chains(g);
  ASSERT_EQ(cc.contracted.num_tasks(), 1);
  const MTask& merged = cc.contracted.task(0);
  EXPECT_EQ(merged.comms().size(), 2u);
  EXPECT_EQ(merged.params().size(), 2u);
  EXPECT_EQ(merged.max_cores(), 7);
}

TEST(ChainContraction, MarkersNeverJoinChains) {
  TaskGraph g;
  const TaskId a = g.add_task(MTask("a", 1.0));
  const TaskId b = g.add_task(MTask("b", 1.0));
  g.add_edge(a, b);
  g.add_start_stop_markers();
  const ChainContraction cc = contract_linear_chains(g);
  // start -> chain(a..b) -> stop: 3 contracted nodes.
  EXPECT_EQ(cc.contracted.num_tasks(), 3);
}

// --- greedy layering (paper Section 3.2 step 2, Fig. 5 right) ---

TEST(GreedyLayers, DiamondHasThreeLayers) {
  const std::vector<std::vector<TaskId>> layers = greedy_layers(diamond());
  ASSERT_EQ(layers.size(), 3u);
  EXPECT_EQ(layers[0], (std::vector<TaskId>{0}));
  EXPECT_EQ(layers[1], (std::vector<TaskId>{1, 2}));
  EXPECT_EQ(layers[2], (std::vector<TaskId>{3}));
}

TEST(GreedyLayers, LayersArePairwiseIndependent) {
  ode::SolverGraphSpec spec;
  spec.method = ode::Method::EPOL;
  spec.n = 64;
  spec.stages = 4;
  TaskGraph g = spec.step_graph();
  const ChainContraction cc = contract_linear_chains(g);
  for (const std::vector<TaskId>& layer : greedy_layers(cc.contracted)) {
    for (std::size_t i = 0; i < layer.size(); ++i) {
      for (std::size_t j = i + 1; j < layer.size(); ++j) {
        EXPECT_TRUE(cc.contracted.independent(layer[i], layer[j]));
      }
    }
  }
}

TEST(GreedyLayers, EpolContractedStepHasTwoLayers) {
  // Fig. 5 (right): after contraction one layer of 4 chains + the combine.
  ode::SolverGraphSpec spec;
  spec.method = ode::Method::EPOL;
  spec.n = 64;
  spec.stages = 4;
  const ChainContraction cc = contract_linear_chains(spec.step_graph());
  const std::vector<std::vector<TaskId>> layers = greedy_layers(cc.contracted);
  ASSERT_EQ(layers.size(), 2u);
  EXPECT_EQ(layers[0].size(), 4u);
  EXPECT_EQ(layers[1].size(), 1u);
}

TEST(GreedyLayers, SkipsMarkers) {
  TaskGraph g = diamond();
  g.add_start_stop_markers();
  const std::vector<std::vector<TaskId>> layers = greedy_layers(g);
  ASSERT_EQ(layers.size(), 3u);
  std::size_t total = 0;
  for (const auto& l : layers) total += l.size();
  EXPECT_EQ(total, 4u);
}

TEST(GreedyLayers, CoversEveryTaskExactlyOnce) {
  ode::SolverGraphSpec spec;
  spec.method = ode::Method::IRK;
  spec.n = 128;
  spec.stages = 4;
  spec.iterations = 3;
  const TaskGraph g = spec.step_graph();
  std::set<TaskId> seen;
  for (const auto& layer : greedy_layers(g)) {
    for (TaskId id : layer) EXPECT_TRUE(seen.insert(id).second);
  }
  EXPECT_EQ(static_cast<int>(seen.size()), g.num_tasks());
}

// --- critical path ---

TEST(CriticalPath, DiamondLongestBranch) {
  const TaskGraph g = diamond();
  const std::vector<double> times{1.0, 2.0, 3.0, 4.0};
  const CriticalPathInfo info = critical_path(g, times);
  EXPECT_DOUBLE_EQ(info.length, 1.0 + 3.0 + 4.0);
  EXPECT_EQ(info.path, (std::vector<TaskId>{0, 2, 3}));
  EXPECT_DOUBLE_EQ(info.top_level[3], 4.0);
  EXPECT_DOUBLE_EQ(info.bottom_level[0], 8.0);
}

TEST(CriticalPath, SizesMustMatch) {
  const TaskGraph g = diamond();
  const std::vector<double> wrong{1.0};
  EXPECT_THROW(critical_path(g, wrong), std::invalid_argument);
}

// --- specification builder (paper Fig. 3) ---

TEST(SpecBuilder, RawDependencyCreatesEdge) {
  SpecBuilder b("demo");
  const Var x = b.var("x", 800);
  const TaskId w = b.call(MTask("writer", 1.0), {}, {x});
  const TaskId r = b.call(MTask("reader", 1.0), {x}, {});
  const HierGraph spec = b.build();
  EXPECT_TRUE(spec.graph.has_edge(w, r));
}

TEST(SpecBuilder, WarAndWawSerializeWriters) {
  SpecBuilder b("demo");
  const Var x = b.var("x", 800);
  const TaskId w1 = b.call(MTask("w1", 1.0), {}, {x});
  const TaskId r1 = b.call(MTask("r1", 1.0), {x}, {});
  const TaskId w2 = b.call(MTask("w2", 1.0), {}, {x});
  const HierGraph spec = b.build();
  EXPECT_TRUE(spec.graph.has_edge(w1, w2));  // WAW
  EXPECT_TRUE(spec.graph.has_edge(r1, w2));  // WAR
}

TEST(SpecBuilder, ParforIterationsAreIndependent) {
  SpecBuilder b("demo");
  const Var a = b.var("a", 8);
  std::vector<TaskId> iter_tasks;
  const TaskId init = b.call(MTask("init", 1.0), {}, {a});
  b.parfor(4, [&](int i) {
    const Var v = b.var("v" + std::to_string(i), 8);
    iter_tasks.push_back(
        b.call(MTask("it" + std::to_string(i), 1.0), {a}, {v}));
  });
  const HierGraph spec = b.build();
  for (std::size_t i = 0; i < iter_tasks.size(); ++i) {
    EXPECT_TRUE(spec.graph.has_edge(init, iter_tasks[i]));
    for (std::size_t j = i + 1; j < iter_tasks.size(); ++j) {
      EXPECT_TRUE(spec.graph.independent(iter_tasks[i], iter_tasks[j]));
    }
  }
}

TEST(SpecBuilder, ForLoopChainsThroughSharedVariable) {
  SpecBuilder b("demo");
  const Var v = b.var("v", 8);
  std::vector<TaskId> tasks;
  b.call(MTask("init", 1.0), {}, {v});
  b.for_loop(3, [&](int i) {
    tasks.push_back(b.call(MTask("s" + std::to_string(i), 1.0), {v}, {v}));
  });
  const HierGraph spec = b.build();
  EXPECT_TRUE(spec.graph.has_edge(tasks[0], tasks[1]));
  EXPECT_TRUE(spec.graph.has_edge(tasks[1], tasks[2]));
}

/// All edges between non-marker tasks, as an exact comparable set.
std::set<std::pair<TaskId, TaskId>> basic_edge_set(const TaskGraph& g) {
  std::set<std::pair<TaskId, TaskId>> out;
  for (TaskId u = 0; u < g.num_tasks(); ++u) {
    if (g.task(u).is_marker()) continue;
    for (const TaskId v : g.successors(u)) {
      if (!g.task(v).is_marker()) out.insert({u, v});
    }
  }
  return out;
}

/// The builder's def/use analysis must leave no unordered conflicting pair;
/// the analyzer's race pass is an independent implementation of exactly that
/// requirement.
void expect_race_free(const TaskGraph& g) {
  const analysis::Report report = analysis::Analyzer().analyze(g);
  EXPECT_EQ(report.count(analysis::kRaceWaw), 0) << analysis::render_text(report);
  EXPECT_EQ(report.count(analysis::kRaceRaw), 0) << analysis::render_text(report);
}

TEST(SpecBuilder, WriterAfterReadersInForLoopGetsExactEdgeSet) {
  // Per iteration: two readers of x, then a writer of x.  The writer must be
  // serialized against both readers (WAR) and the previous writer (WAW); the
  // next iteration's readers hang off the new writer (RAW).
  SpecBuilder b("demo");
  const Var x = b.var("x", 800);
  const TaskId init = b.call(MTask("init", 1.0), {}, {x});
  std::vector<TaskId> ra(2), rb(2), w(2);
  b.for_loop(2, [&](int i) {
    ra[static_cast<std::size_t>(i)] = b.call(MTask("ra", 1.0), {x}, {});
    rb[static_cast<std::size_t>(i)] = b.call(MTask("rb", 1.0), {x}, {});
    w[static_cast<std::size_t>(i)] = b.call(MTask("w", 1.0), {}, {x});
  });
  const HierGraph spec = b.build();

  const std::set<std::pair<TaskId, TaskId>> expected = {
      {init, ra[0]}, {init, rb[0]},            // RAW from init
      {init, w[0]},                            // WAW init -> w0
      {ra[0], w[0]}, {rb[0], w[0]},            // WAR readers -> w0
      {w[0], ra[1]}, {w[0], rb[1]},            // RAW from w0
      {w[0], w[1]},                            // WAW w0 -> w1
      {ra[1], w[1]}, {rb[1], w[1]},            // WAR readers -> w1
  };
  EXPECT_EQ(basic_edge_set(spec.graph), expected);
  expect_race_free(spec.graph);
}

TEST(SpecBuilder, WriterAfterParforReadersGetsExactEdgeSet) {
  // parfor iterations all read x concurrently; a writer following the loop
  // must be ordered behind every iteration (WAR) and behind the original
  // writer (WAW).
  SpecBuilder b("demo");
  const Var x = b.var("x", 800);
  const TaskId init = b.call(MTask("init", 1.0), {}, {x});
  std::vector<TaskId> readers(3);
  b.parfor(3, [&](int i) {
    readers[static_cast<std::size_t>(i)] = b.call(MTask("r", 1.0), {x}, {});
  });
  const TaskId writer = b.call(MTask("w", 1.0), {}, {x});
  const HierGraph spec = b.build();

  const std::set<std::pair<TaskId, TaskId>> expected = {
      {init, readers[0]}, {init, readers[1]}, {init, readers[2]},
      {init, writer},  // WAW
      {readers[0], writer}, {readers[1], writer}, {readers[2], writer},
  };
  EXPECT_EQ(basic_edge_set(spec.graph), expected);
  for (std::size_t i = 0; i < readers.size(); ++i) {
    for (std::size_t j = i + 1; j < readers.size(); ++j) {
      EXPECT_TRUE(spec.graph.independent(readers[i], readers[j]));
    }
  }
  expect_race_free(spec.graph);
}

TEST(SpecBuilder, ParforWritersOfDisjointVarsStayParallelButLintClean) {
  // Writers of disjoint per-iteration variables need no mutual ordering --
  // and the race pass must agree that nothing is missing.
  SpecBuilder b("demo");
  const Var a = b.var("a", 8);
  const TaskId init = b.call(MTask("init", 1.0), {}, {a});
  std::vector<TaskId> writers(3);
  b.parfor(3, [&](int i) {
    const Var v = b.var("v" + std::to_string(i), 8);
    writers[static_cast<std::size_t>(i)] =
        b.call(MTask("w" + std::to_string(i), 1.0), {a}, {v});
  });
  const HierGraph spec = b.build();
  for (std::size_t i = 0; i < writers.size(); ++i) {
    EXPECT_TRUE(spec.graph.has_edge(init, writers[i]));
    for (std::size_t j = i + 1; j < writers.size(); ++j) {
      EXPECT_TRUE(spec.graph.independent(writers[i], writers[j]));
    }
  }
  expect_race_free(spec.graph);
}

TEST(SpecBuilder, DroppedSerializationEdgeIsCaughtByRacePass) {
  // The differential direction: hand-build the graph a buggy builder would
  // produce (reader and writer of x left unordered) and confirm the race
  // pass flags exactly that pair.
  TaskGraph g;
  const TaskId init = g.add_task(MTask("init", 1.0));
  MTask reader("r", 1.0);
  reader.add_param(Param{"x", 800, dist::Distribution::replicated(),
                         /*is_input=*/true, /*is_output=*/false});
  MTask writer("w", 1.0);
  writer.add_param(Param{"x", 800, dist::Distribution::replicated(),
                         /*is_input=*/false, /*is_output=*/true});
  const TaskId r = g.add_task(std::move(reader));
  const TaskId w = g.add_task(std::move(writer));
  g.add_edge(init, r);
  g.add_edge(init, w);  // but no r -> w WAR edge

  const analysis::Report report = analysis::Analyzer().analyze(g);
  ASSERT_EQ(report.count(analysis::kRaceRaw), 1)
      << analysis::render_text(report);
  EXPECT_EQ(report.diagnostics.front().vars,
            std::vector<std::string>{"x"});
}

TEST(SpecBuilder, WhileLoopBecomesHierarchicalNode) {
  const HierGraph spec = ode::epol_program_spec(256, 4, 14.0, 100.0);
  // Upper level: init_step + while node (+ markers).
  int non_markers = 0;
  TaskId while_node = kInvalidTask;
  for (TaskId id = 0; id < spec.graph.num_tasks(); ++id) {
    if (!spec.graph.task(id).is_marker()) {
      ++non_markers;
      if (spec.sub.count(id)) while_node = id;
    }
  }
  EXPECT_EQ(non_markers, 2);
  ASSERT_NE(while_node, kInvalidTask);
  // Lower level (Fig. 4): 10 micro steps + combine (+ markers).
  const HierGraph& body = *spec.sub.at(while_node);
  EXPECT_EQ(body.total_basic_tasks(), 11);
  // init_step precedes the while node.
  EXPECT_EQ(spec.total_basic_tasks(), 1 + 11);
}

TEST(SpecBuilder, WhileNodeAggregatesWorkByIterationHint) {
  const HierGraph one = ode::epol_program_spec(256, 4, 14.0, 1.0);
  const HierGraph hundred = ode::epol_program_spec(256, 4, 14.0, 100.0);
  TaskId w1 = kInvalidTask, w100 = kInvalidTask;
  for (TaskId id = 0; id < one.graph.num_tasks(); ++id) {
    if (one.sub.count(id)) w1 = id;
  }
  for (TaskId id = 0; id < hundred.graph.num_tasks(); ++id) {
    if (hundred.sub.count(id)) w100 = id;
  }
  EXPECT_NEAR(hundred.graph.task(w100).work_flop(),
              100.0 * one.graph.task(w1).work_flop(), 1e-6);
}

TEST(Flatten, UnrollsWhileBodiesIntoOneLevel) {
  // Fig. 3/4: init_step + while(10 steps + combine); flattening with 3
  // iterations yields init + 3 x 11 tasks, chained step to step.
  const HierGraph spec = ode::epol_program_spec(256, 4, 14.0, 3.0);
  const TaskGraph flat = flatten(spec, 3);
  EXPECT_EQ(flat.num_tasks(), 1 + 3 * 11);
  // init_step precedes every first-iteration micro step ...
  TaskId init = kInvalidTask, step0 = kInvalidTask, combine0 = kInvalidTask,
         step1 = kInvalidTask;
  for (TaskId id = 0; id < flat.num_tasks(); ++id) {
    const std::string& name = flat.task(id).name();
    if (name == "init_step") init = id;
    if (name == "step(1,1)#0") step0 = id;
    if (name == "combine#0") combine0 = id;
    if (name == "step(1,1)#1") step1 = id;
  }
  ASSERT_NE(init, kInvalidTask);
  ASSERT_NE(step0, kInvalidTask);
  EXPECT_TRUE(flat.reaches(init, step0));
  // ... and combine#0 feeds iteration 1.
  ASSERT_NE(combine0, kInvalidTask);
  ASSERT_NE(step1, kInvalidTask);
  EXPECT_TRUE(flat.has_edge(combine0, step1));
  EXPECT_THROW(flatten(spec, 0), std::invalid_argument);
}

TEST(Flatten, BasicGraphIsUnchangedModuloMarkers) {
  SpecBuilder b("plain");
  const Var x = b.var("x", 8);
  const TaskId w = b.call(MTask("w", 1.0), {}, {x});
  const TaskId r = b.call(MTask("r", 2.0), {x}, {});
  (void)w;
  (void)r;
  const HierGraph spec = b.build();
  const TaskGraph flat = flatten(spec, 5);  // iterations irrelevant: no loops
  EXPECT_EQ(flat.num_tasks(), 2);
  EXPECT_EQ(flat.num_edges(), 1);
  EXPECT_DOUBLE_EQ(flat.total_work_flop(), 3.0);
}

TEST(SpecBuilder, BuildTwiceThrows) {
  SpecBuilder b("demo");
  b.call(MTask("t", 1.0), {}, {});
  b.build();
  EXPECT_THROW(b.build(), std::logic_error);
  EXPECT_THROW(b.call(MTask("late", 1.0), {}, {}), std::logic_error);
}

}  // namespace
}  // namespace ptask::core
