// Tests for the scheduler hot-path optimizations (ISSUE: memoized cost
// evaluation, heap-based LPT, pruned group search, parallel per-layer
// assignment).  The load-bearing property is the bit-identity contract:
// every optimization knob, alone and combined, must reproduce the
// all-disabled reference path byte for byte on all five fuzz graph
// families.  Alongside the differential property: CachedCostModel unit
// behaviour (transparency, invalidation on mutation, per-machine
// isolation), deterministic prune accounting, the portfolio's shared
// cache, and group-size helper edge cases.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "ptask/arch/machine.hpp"
#include "ptask/cost/cached_model.hpp"
#include "ptask/cost/cost_model.hpp"
#include "ptask/fuzz/generator.hpp"
#include "ptask/fuzz/rng.hpp"
#include "ptask/obs/metrics.hpp"
#include "ptask/sched/pipeline.hpp"
#include "ptask/sched/portfolio.hpp"

namespace ptask::sched {
namespace {

arch::Machine machine(int nodes = 8) {
  arch::MachineSpec spec = arch::chic();
  spec.num_nodes = nodes;
  return arch::Machine(spec);
}

/// The naive reference configuration: every performance knob off.
LayerSchedulerOptions all_off(LayerSchedulerOptions opt = {}) {
  opt.cost_cache = false;
  opt.heap_lpt = false;
  opt.prune_group_search = false;
  opt.parallel_layers = 1;
  return opt;
}

core::TaskGraph family_graph(fuzz::GraphFamily family, fuzz::Rng& rng) {
  const fuzz::GeneratorParams params;
  switch (family) {
    case fuzz::GraphFamily::Layered:
      return fuzz::layered_graph(rng, params);
    case fuzz::GraphFamily::SeriesParallel:
      return fuzz::series_parallel_graph(rng, params);
    case fuzz::GraphFamily::RandomDag:
      return fuzz::random_dag(rng, params);
    case fuzz::GraphFamily::OdeSolver:
      return fuzz::ode_solver_graph(rng);
    case fuzz::GraphFamily::NpbMultiZone:
      return fuzz::npb_multizone_graph(rng);
  }
  return core::TaskGraph();
}

core::TaskGraph independent_tasks(const std::vector<double>& works) {
  core::TaskGraph g;
  for (std::size_t i = 0; i < works.size(); ++i) {
    g.add_task(core::MTask("t" + std::to_string(i), works[i]));
  }
  return g;
}

/// Exact (bit-level) comparison of two layered schedules.
void expect_identical(const LayeredSchedule& reference,
                      const LayeredSchedule& actual,
                      const std::string& label) {
  EXPECT_EQ(reference.total_cores, actual.total_cores) << label;
  EXPECT_EQ(reference.predicted_makespan, actual.predicted_makespan) << label;
  ASSERT_EQ(reference.layers.size(), actual.layers.size()) << label;
  for (std::size_t l = 0; l < reference.layers.size(); ++l) {
    const ScheduledLayer& a = reference.layers[l];
    const ScheduledLayer& b = actual.layers[l];
    const std::string where = label + ", layer " + std::to_string(l);
    EXPECT_EQ(a.tasks, b.tasks) << where;
    EXPECT_EQ(a.group_sizes, b.group_sizes) << where;
    EXPECT_EQ(a.task_group, b.task_group) << where;
    EXPECT_EQ(a.predicted_time, b.predicted_time) << where;
  }
}

/// Exact comparison of two canonical schedules (Gantt view + allocation).
void expect_same_schedule(const Schedule& reference, const Schedule& actual,
                          const std::string& label) {
  EXPECT_EQ(reference.gantt.makespan, actual.gantt.makespan) << label;
  EXPECT_EQ(reference.allocation, actual.allocation) << label;
  ASSERT_EQ(reference.gantt.slots.size(), actual.gantt.slots.size()) << label;
  for (std::size_t i = 0; i < reference.gantt.slots.size(); ++i) {
    const TaskSlot& a = reference.gantt.slots[i];
    const TaskSlot& b = actual.gantt.slots[i];
    const std::string where = label + ", slot " + std::to_string(i);
    EXPECT_EQ(a.cores, b.cores) << where;
    EXPECT_EQ(a.start, b.start) << where;
    EXPECT_EQ(a.finish, b.finish) << where;
  }
}

// ---------------------------------------------------------------------------
// Differential property: each optimization alone, and all combined, against
// the all-disabled reference path.
// ---------------------------------------------------------------------------

TEST(PerfKnobDifferential, EveryKnobIsBitTransparentOnAllFamilies) {
  const std::uint64_t base =
      fuzz::substream(fuzz::seed_from_env(fuzz::kDefaultFuzzSeed), 0x5EED);
  const std::vector<fuzz::GraphFamily> families = {
      fuzz::GraphFamily::Layered,       fuzz::GraphFamily::SeriesParallel,
      fuzz::GraphFamily::RandomDag,     fuzz::GraphFamily::OdeSolver,
      fuzz::GraphFamily::NpbMultiZone};

  // One knob flipped on per variant, then everything at once (cache + heap
  // + prune + 4 layer threads).
  struct Variant {
    const char* name;
    LayerSchedulerOptions opt;
  };
  std::vector<Variant> variants;
  {
    Variant v{"cache", all_off()};
    v.opt.cost_cache = true;
    variants.push_back(v);
    v = {"heap", all_off()};
    v.opt.heap_lpt = true;
    variants.push_back(v);
    v = {"prune", all_off()};
    v.opt.prune_group_search = true;
    variants.push_back(v);
    v = {"parallel", all_off()};
    v.opt.parallel_layers = 4;
    variants.push_back(v);
    v = {"all", LayerSchedulerOptions{}};
    v.opt.parallel_layers = 4;
    variants.push_back(v);
  }

  for (std::size_t f = 0; f < families.size(); ++f) {
    for (int s = 0; s < 8; ++s) {
      const std::uint64_t seed =
          fuzz::substream(base, (static_cast<std::uint64_t>(f) << 32) |
                                    static_cast<std::uint64_t>(s));
      fuzz::Rng graph_rng(seed);
      const core::TaskGraph graph = family_graph(families[f], graph_rng);
      fuzz::Rng shape_rng(fuzz::substream(seed, 0xC0DE));
      const arch::Machine m = machine(shape_rng.uniform(1, 16));
      const cost::CostModel cost(m);
      const int cores = 1 << shape_rng.uniform(1, 7);

      const LayeredSchedule reference =
          Pipeline::algorithm1(cost, all_off()).run_layered(graph, cores);
      const Schedule reference_canonical =
          Pipeline::algorithm1(cost, all_off()).run(graph, cores);
      for (const Variant& variant : variants) {
        const std::string label = std::string(to_string(families[f])) +
                                  " seed " + std::to_string(s) + " cores " +
                                  std::to_string(cores) + " [" +
                                  variant.name + "]";
        expect_identical(
            reference,
            Pipeline::algorithm1(cost, variant.opt).run_layered(graph, cores),
            label);
        expect_same_schedule(
            reference_canonical,
            Pipeline::algorithm1(cost, variant.opt).run(graph, cores), label);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// CachedCostModel unit behaviour.
// ---------------------------------------------------------------------------

TEST(CachedCostModelTest, IsBitTransparentAndCountsHits) {
  const arch::Machine m = machine(4);
  const cost::CostModel plain(m);
  const cost::CachedCostModel cached(plain);

  core::MTask task("t", 3.7e9);
  task.add_comm({core::CollectiveKind::Allreduce, core::CommScope::Group,
                 1 << 20, 2});
  for (int pass = 0; pass < 2; ++pass) {
    for (int q : {1, 2, 3, 8, 64}) {
      for (int g : {1, 2, 4}) {
        EXPECT_EQ(plain.symbolic_task_time(task, q, g, 128),
                  cached.symbolic_task_time(task, q, g, 128))
            << "q=" << q << " g=" << g;
      }
    }
  }
  // The group-scope task is priced independently of num_groups, so the
  // first pass misses once per q and hits for the other group counts; the
  // second pass hits everywhere.
  EXPECT_EQ(cached.misses(), 5u);
  EXPECT_EQ(cached.hits(), 25u);
}

TEST(CachedCostModelTest, OrthogonalTasksKeyOnGroupCount) {
  const arch::Machine m = machine(4);
  const cost::CostModel plain(m);
  const cost::CachedCostModel cached(plain);

  core::MTask task("ortho", 1.0e9);
  task.add_comm({core::CollectiveKind::Allgather, core::CommScope::Orthogonal,
                 1 << 22, 1});
  EXPECT_TRUE(cost::CachedCostModel::depends_on_num_groups(task));
  for (int g : {1, 2, 4, 8}) {
    EXPECT_EQ(plain.symbolic_task_time(task, 8, g, 64),
              cached.symbolic_task_time(task, 8, g, 64))
        << "g=" << g;
  }
  // Four distinct group counts -> four distinct entries, no stale reuse.
  EXPECT_EQ(cached.misses(), 4u);
}

TEST(CachedCostModelTest, MutationAtTheSameAddressIsNotServedStale) {
  const arch::Machine m = machine(4);
  const cost::CostModel plain(m);
  const cost::CachedCostModel cached(plain);

  // The same MTask object (same address) is re-priced after mutations that
  // change its cost: the content fingerprint must force a fresh compute.
  core::MTask task("mut", 1.0e9);
  EXPECT_EQ(cached.symbolic_task_time(task, 4, 1, 16),
            plain.symbolic_task_time(task, 4, 1, 16));

  task.set_work_flop(2.5e9);
  EXPECT_EQ(cached.symbolic_task_time(task, 4, 1, 16),
            plain.symbolic_task_time(task, 4, 1, 16));

  task.set_max_cores(2);
  EXPECT_EQ(cached.symbolic_task_time(task, 4, 1, 16),
            plain.symbolic_task_time(task, 4, 1, 16));

  task.add_comm({core::CollectiveKind::Bcast, core::CommScope::Global,
                 1 << 16, 3});
  EXPECT_EQ(cached.symbolic_task_time(task, 4, 1, 16),
            plain.symbolic_task_time(task, 4, 1, 16));

  EXPECT_EQ(cached.misses(), 4u);
  EXPECT_EQ(cached.hits(), 0u);
}

TEST(CachedCostModelTest, NearCollisionOneUlpWeightChangeIsNotServedStale) {
  // Negative test for fingerprint near-collisions: the same task object
  // (same address, so only the content fingerprint separates the entries)
  // re-priced after the *smallest representable* weight change.  A
  // fingerprint that truncated, rounded, or only sampled the weight would
  // serve the stale time here.
  const arch::Machine m = machine(4);
  const cost::CostModel plain(m);
  const cost::CachedCostModel cached(plain);

  core::MTask task("ulp", 1.0e9);
  const double first = cached.symbolic_task_time(task, 4, 1, 16);
  EXPECT_EQ(first, plain.symbolic_task_time(task, 4, 1, 16));

  task.set_work_flop(std::nextafter(1.0e9, 2.0e9));
  const double second = cached.symbolic_task_time(task, 4, 1, 16);
  EXPECT_EQ(second, plain.symbolic_task_time(task, 4, 1, 16));
  EXPECT_NE(first, second);
  EXPECT_EQ(cached.misses(), 2u);
  EXPECT_EQ(cached.hits(), 0u);
}

TEST(CachedCostModelTest, NearCollisionGraphsSameShapeOneWeightDiffers) {
  // Two structurally identical graphs -- same tasks, same collectives, same
  // edges -- where exactly one task's weight differs.  Priced through one
  // shared cache, every task of both graphs must come back bit-identical to
  // the plain model; the twin of the differing task must be a fresh miss,
  // never a hit on its near-collision sibling.
  const arch::Machine m = machine(4);
  const cost::CostModel plain(m);
  const cost::CachedCostModel cached(plain);

  const auto build = [](double pivot_work) {
    core::TaskGraph graph;
    core::TaskId previous = core::kInvalidTask;
    for (int i = 0; i < 6; ++i) {
      core::MTask task("t" + std::to_string(i),
                       i == 3 ? pivot_work : 1.0e8 * (i + 1));
      task.add_comm({core::CollectiveKind::Allgather, core::CommScope::Group,
                     1u << 18, 1});
      const core::TaskId id = graph.add_task(task);
      if (i > 0) graph.add_edge(previous, id);
      previous = id;
    }
    return graph;
  };

  const core::TaskGraph a = build(5.0e8);
  const core::TaskGraph b = build(std::nextafter(5.0e8, 1.0e9));
  for (const core::TaskGraph* graph : {&a, &b}) {
    for (core::TaskId id = 0; id < graph->num_tasks(); ++id) {
      for (int q : {1, 4, 16}) {
        EXPECT_EQ(cached.symbolic_task_time(graph->task(id), q, 1, 64),
                  plain.symbolic_task_time(graph->task(id), q, 1, 64))
            << "task " << id << " q=" << q;
      }
    }
  }
  // Distinct task objects never share entries (keys carry the address), so
  // all 36 evaluations are misses -- and in particular the pivot twin was
  // not answered from its near-collision sibling's entry.
  EXPECT_EQ(cached.misses(), 36u);
  EXPECT_EQ(cached.hits(), 0u);
}

TEST(CachedCostModelTest, NearCollisionSwappedCollectiveFieldsStayDistinct) {
  // Field-transposition near-collisions: the same numeric values moved
  // between fields (bytes<->repeat, and a kind/scope swap).  A fingerprint
  // that summed or XOR-folded fields order-insensitively would alias these;
  // the sequential byte mix must keep them apart.
  const arch::Machine m = machine(4);
  const cost::CostModel plain(m);
  const cost::CachedCostModel cached(plain);

  core::MTask task("swap", 1.0e9);
  task.add_comm({core::CollectiveKind::Allgather, core::CommScope::Group,
                 4096, 8});
  const double first = cached.symbolic_task_time(task, 4, 1, 16);
  EXPECT_EQ(first, plain.symbolic_task_time(task, 4, 1, 16));

  // bytes=8, repeat=4096: same numbers, transposed fields, written into the
  // SAME object (assignment keeps the address, i.e. real address reuse).
  core::MTask transposed("swap", 1.0e9);
  transposed.add_comm({core::CollectiveKind::Allgather, core::CommScope::Group,
                       8, 4096});
  task = transposed;
  const double second = cached.symbolic_task_time(task, 4, 1, 16);
  EXPECT_EQ(second, plain.symbolic_task_time(task, 4, 1, 16));

  EXPECT_EQ(cached.misses(), 2u);
  EXPECT_EQ(cached.hits(), 0u);
}

TEST(CachedCostModelTest, CachesOfDifferentMachinesStayIsolated) {
  const arch::Machine small = machine(1);
  const arch::Machine large = machine(16);
  const cost::CostModel plain_small(small);
  const cost::CostModel plain_large(large);
  const cost::CachedCostModel cached_small(plain_small);
  const cost::CachedCostModel cached_large(plain_large);

  core::MTask task("t", 2.0e9);
  task.add_comm({core::CollectiveKind::Allreduce, core::CommScope::Global,
                 1 << 24, 1});
  for (int q : {1, 4, 16}) {
    EXPECT_EQ(cached_small.symbolic_task_time(task, q, 2, 16),
              plain_small.symbolic_task_time(task, q, 2, 16));
    EXPECT_EQ(cached_large.symbolic_task_time(task, q, 2, 16),
              plain_large.symbolic_task_time(task, q, 2, 16));
  }
}

TEST(CachedCostModelTest, ClearDropsEntriesButKeepsValues) {
  const arch::Machine m = machine(2);
  const cost::CostModel plain(m);
  cost::CachedCostModel cached(plain);

  const core::MTask task("t", 1.0e9);
  const double before = cached.symbolic_task_time(task, 2, 1, 4);
  cached.clear();
  EXPECT_EQ(cached.symbolic_task_time(task, 2, 1, 4), before);
  EXPECT_EQ(cached.misses(), 2u);  // recomputed after clear()
}

// ---------------------------------------------------------------------------
// Prune accounting and observability counters.
// ---------------------------------------------------------------------------

TEST(PruneCounters, DeterministicPruneCountOnSequentialTasks) {
  // Eight sequential tasks (max_cores = 1), one dominant: once g=2 has
  // incumbent time = t(dominant), the compute-only lower bound equals the
  // incumbent for every larger g and the candidate is pruned.  Candidates
  // are g = 1..8 (P = 16, 8 tasks): g=1 and g=2 evaluate, g=3..8 prune.
  core::TaskGraph graph = independent_tasks(
      {100.0e9, 1.0e9, 1.0e9, 1.0e9, 1.0e9, 1.0e9, 1.0e9, 1.0e9});
  for (core::TaskId id = 0; id < graph.num_tasks(); ++id) {
    graph.task(id).set_max_cores(1);
  }
  const arch::Machine m = machine(4);
  const cost::CostModel cost(m);

  obs::metrics().reset();
  const LayeredSchedule pruned =
      Pipeline::algorithm1(cost).run_layered(graph, 16);
  EXPECT_EQ(obs::metrics().counter("sched.prune.evaluated").value(), 2u);
  EXPECT_EQ(obs::metrics().counter("sched.prune.pruned").value(), 6u);

  // Same schedule as the exhaustive sweep.
  LayerSchedulerOptions exhaustive;
  exhaustive.prune_group_search = false;
  expect_identical(
      Pipeline::algorithm1(cost, exhaustive).run_layered(graph, 16), pruned,
      "pruned vs exhaustive");
  EXPECT_EQ(obs::metrics().counter("sched.prune.pruned").value(), 6u);
  EXPECT_EQ(obs::metrics().counter("sched.prune.evaluated").value(), 10u);
}

TEST(ObsCounters, PortfolioRunHitsTheSharedCostCache) {
  const std::uint64_t seed =
      fuzz::substream(fuzz::seed_from_env(fuzz::kDefaultFuzzSeed), 0xCAFE);
  fuzz::Rng rng(seed);
  const core::TaskGraph graph =
      family_graph(fuzz::GraphFamily::Layered, rng);
  const arch::Machine m = machine(4);
  const cost::CostModel cost(m);

  obs::metrics().reset();
  PortfolioOptions options;
  options.shared_cost_cache = true;  // opt-in: pays off on repetitive graphs
  const PortfolioScheduler portfolio(cost, options);
  const Schedule winner = portfolio.run(graph, 64);
  EXPECT_GT(winner.gantt.makespan, 0.0);
  EXPECT_GT(obs::metrics().counter("sched.cache.hit").value(), 0u);
  EXPECT_GT(obs::metrics().counter("sched.cache.miss").value(), 0u);
}

// ---------------------------------------------------------------------------
// Group-size helpers and scheduler edge cases (satellites).
// ---------------------------------------------------------------------------

TEST(GroupSizeHelpers, EqualSplitRejectsMoreGroupsThanCores) {
  EXPECT_THROW(equal_group_sizes(4, 8), std::invalid_argument);
  EXPECT_THROW(equal_group_sizes(4, 0), std::invalid_argument);
  EXPECT_THROW(equal_group_sizes(4, -1), std::invalid_argument);
  EXPECT_EQ(equal_group_sizes(4, 4), (std::vector<int>{1, 1, 1, 1}));
  EXPECT_EQ(equal_group_sizes(7, 3), (std::vector<int>{3, 2, 2}));
}

TEST(GroupSizeHelpers, ProportionalSplitKeepsZeroWeightGroupsAlive) {
  // A zero-weight group still gets its guaranteed core.
  const std::vector<int> sizes = proportional_group_sizes(8, {3.0, 0.0, 1.0});
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0] + sizes[1] + sizes[2], 8);
  for (int s : sizes) EXPECT_GE(s, 1);
  EXPECT_GE(sizes[0], sizes[2]);

  // All-zero weights degrade to the equal split.
  EXPECT_EQ(proportional_group_sizes(7, {0.0, 0.0, 0.0}),
            equal_group_sizes(7, 3));
}

TEST(SchedulerEdgeCases, ZeroWorkGroupsSurviveAdjustment) {
  // With a zero-work task forced into its own group, AdjustGroups prices a
  // zero-weight group: it must keep >= 1 core and the sizes still sum to P.
  core::TaskGraph graph = independent_tasks({4.0e9, 0.0});
  const arch::Machine m = machine(2);
  const cost::CostModel cost(m);
  LayerSchedulerOptions opt;
  opt.fixed_groups = 2;
  const LayeredSchedule schedule =
      Pipeline::algorithm1(cost, opt).run_layered(graph, 8);
  ASSERT_EQ(schedule.layers.size(), 1u);
  const ScheduledLayer& layer = schedule.layers[0];
  ASSERT_EQ(layer.num_groups(), 2);
  int total = 0;
  for (int s : layer.group_sizes) {
    EXPECT_GE(s, 1);
    total += s;
  }
  EXPECT_EQ(total, 8);
}

TEST(SchedulerEdgeCases, FixedGroupsClampsToTaskAndCoreCount) {
  const arch::Machine m = machine(2);
  const cost::CostModel cost(m);
  LayerSchedulerOptions opt;
  opt.fixed_groups = 10;

  // Clamped to the layer's task count...
  core::TaskGraph three = independent_tasks({1.0e9, 2.0e9, 3.0e9});
  const LayeredSchedule by_tasks =
      Pipeline::algorithm1(cost, opt).run_layered(three, 8);
  ASSERT_EQ(by_tasks.layers.size(), 1u);
  EXPECT_EQ(by_tasks.layers[0].num_groups(), 3);

  // ...and to the core budget when that is smaller than the task count.
  core::TaskGraph wide =
      independent_tasks({1.0e9, 2.0e9, 3.0e9, 4.0e9, 5.0e9});
  const LayeredSchedule by_cores =
      Pipeline::algorithm1(cost, opt).run_layered(wide, 2);
  ASSERT_EQ(by_cores.layers.size(), 1u);
  EXPECT_EQ(by_cores.layers[0].num_groups(), 2);
}

TEST(SchedulerEdgeCases, SingleTaskLayersGetOneGroupWithAllCores) {
  // A pure chain with contraction disabled: every layer holds one task, so
  // the only candidate is g=1 and the task gets the whole budget.
  core::TaskGraph graph;
  for (int i = 0; i < 4; ++i) {
    graph.add_task(core::MTask("c" + std::to_string(i), 1.0e9));
  }
  for (core::TaskId i = 0; i + 1 < 4; ++i) graph.add_edge(i, i + 1);
  const arch::Machine m = machine(2);
  const cost::CostModel cost(m);
  LayerSchedulerOptions opt;
  opt.contract_chains = false;
  const LayeredSchedule schedule =
      Pipeline::algorithm1(cost, opt).run_layered(graph, 16);
  ASSERT_EQ(schedule.layers.size(), 4u);
  for (const ScheduledLayer& layer : schedule.layers) {
    EXPECT_EQ(layer.group_sizes, (std::vector<int>{16}));
    EXPECT_EQ(layer.task_group, (std::vector<int>{0}));
  }
}

TEST(SchedulerEdgeCases, ParallelLayersBeyondLayerCountIsHarmless) {
  core::TaskGraph graph = independent_tasks({1.0e9, 2.0e9, 3.0e9});
  const arch::Machine m = machine(2);
  const cost::CostModel cost(m);
  LayerSchedulerOptions opt;
  opt.parallel_layers = 64;  // one layer; workers clamp to the layer count
  expect_identical(Pipeline::algorithm1(cost, all_off()).run_layered(graph, 8),
                   Pipeline::algorithm1(cost, opt).run_layered(graph, 8),
                   "parallel_layers > n_layers");
}

}  // namespace
}  // namespace ptask::sched
