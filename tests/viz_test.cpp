// Tests for schedule/trace visualization and simulator trace recording.

#include <gtest/gtest.h>

#include <numeric>

#include "ptask/net/collectives.hpp"
#include "ptask/ode/graph_gen.hpp"
#include "ptask/sched/layer_scheduler.hpp"
#include "ptask/viz/gantt.hpp"

namespace ptask::viz {
namespace {

arch::Machine machine(int nodes = 4) {
  arch::MachineSpec spec = arch::chic();
  spec.num_nodes = nodes;
  return arch::Machine(spec);
}

struct GanttFixture {
  core::TaskGraph graph;
  sched::GanttSchedule gantt;

  GanttFixture() {
    ode::SolverGraphSpec spec;
    spec.method = ode::Method::EPOL;
    spec.n = 1 << 12;
    spec.stages = 4;
    graph = spec.step_graph();
    const cost::CostModel cm(machine());
    const sched::LayeredSchedule s = sched::LayerScheduler(cm).schedule(graph, 8);
    graph = s.contraction.contracted;  // render the contracted view
    gantt = sched::to_gantt(s, [&](core::TaskId id, int q, int g) {
      return cm.symbolic_task_time(graph.task(id), q, g, 8);
    });
  }
};

TEST(AsciiGantt, ContainsEveryCoreBandAndLegend) {
  const GanttFixture fx;
  const std::string art = ascii_gantt(fx.graph, fx.gantt);
  EXPECT_NE(art.find("gantt: 8 cores"), std::string::npos);
  EXPECT_NE(art.find("legend:"), std::string::npos);
  EXPECT_NE(art.find("combine"), std::string::npos);
  // Every non-marker task letter appears somewhere in the chart body.
  for (core::TaskId id = 0; id < fx.graph.num_tasks(); ++id) {
    if (fx.graph.task(id).is_marker()) continue;
    const char letter = static_cast<char>('a' + id);
    EXPECT_NE(art.find(letter), std::string::npos) << "task " << id;
  }
}

TEST(AsciiGantt, CollapsesIdenticalRows) {
  const GanttFixture fx;
  RenderOptions collapsed;
  RenderOptions expanded;
  expanded.collapse_identical_rows = false;
  const std::string a = ascii_gantt(fx.graph, fx.gantt, collapsed);
  const std::string b = ascii_gantt(fx.graph, fx.gantt, expanded);
  EXPECT_LT(std::count(a.begin(), a.end(), '\n'),
            std::count(b.begin(), b.end(), '\n'));
  EXPECT_NE(b.find("core 7"), std::string::npos);
}

TEST(SvgGantt, WellFormedAndContainsRects) {
  const GanttFixture fx;
  const std::string svg = svg_gantt(fx.graph, fx.gantt);
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // One <rect> per (task, band) pairing at least equal to task count.
  std::size_t rects = 0;
  for (std::size_t pos = svg.find("<rect"); pos != std::string::npos;
       pos = svg.find("<rect", pos + 1)) {
    ++rects;
  }
  EXPECT_GE(rects, 5u);
  EXPECT_NE(svg.find("<title>combine"), std::string::npos);
}

TEST(Trace, RecordingOffByDefault) {
  const arch::Machine m = machine();
  sim::ProgramSet programs(2);
  programs.rank(0).add_compute(1.0);
  programs.add_transfer(0, 1, 4096);
  const sim::NetworkSim sim(m, {0, 1});
  EXPECT_TRUE(sim.run(programs).trace.empty());
  EXPECT_FALSE(sim.run(programs, true).trace.empty());
}

TEST(Trace, EventsAreConsistentWithResult) {
  const arch::Machine m = machine(8);
  const int ranks = 8;
  sim::ProgramSet programs(ranks);
  std::vector<int> ids(static_cast<std::size_t>(ranks));
  std::iota(ids.begin(), ids.end(), 0);
  programs.add_compute(ids, 0.001);
  programs.add_collective(net::ring_allgather(ranks, 64 * 1024), ids);
  const sim::NetworkSim sim(m, ids);
  const sim::SimResult result = sim.run(programs, true);

  std::size_t transfers = 0;
  double compute = 0.0;
  double latest = 0.0;
  for (const sim::TraceEvent& e : result.trace) {
    EXPECT_LE(e.start, e.end);
    EXPECT_GE(e.start, 0.0);
    latest = std::max(latest, e.end);
    if (e.kind == sim::TraceEvent::Kind::Transfer) {
      ++transfers;
      EXPECT_NE(e.peer, e.rank);
      EXPECT_GT(e.bytes, 0u);
    } else {
      compute += e.end - e.start;
      EXPECT_EQ(e.peer, -1);
    }
  }
  EXPECT_EQ(transfers, result.transfers);
  EXPECT_NEAR(compute, result.total_compute_seconds, 1e-12);
  EXPECT_NEAR(latest, result.makespan, 1e-12);
}

TEST(Trace, AsciiTimelineMarksComputeAndTransfers) {
  const arch::Machine m = machine();
  sim::ProgramSet programs(2);
  programs.rank(0).add_compute(0.01);
  programs.add_transfer(0, 1, 10 << 20);
  const sim::NetworkSim sim(m, {0, 4});
  const sim::SimResult result = sim.run(programs, true);
  const std::string art = ascii_trace(result, 2);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find('~'), std::string::npos);
  EXPECT_NE(art.find("rank 0"), std::string::npos);
  EXPECT_NE(art.find("rank 1"), std::string::npos);
}

TEST(Trace, CsvHasHeaderAndOneLinePerEvent) {
  const arch::Machine m = machine();
  sim::ProgramSet programs(2);
  programs.rank(0).add_compute(0.5);
  programs.add_transfer(0, 1, 1024);
  const sim::SimResult result =
      sim::NetworkSim(m, {0, 1}).run(programs, true);
  const std::string csv = trace_csv(result);
  EXPECT_EQ(csv.rfind("kind,rank,peer,start,end,bytes", 0), 0u);
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(csv.begin(), csv.end(), '\n')),
            result.trace.size() + 1);
  EXPECT_NE(csv.find("compute,0,-1"), std::string::npos);
  EXPECT_NE(csv.find("transfer,1,0"), std::string::npos);
}

}  // namespace
}  // namespace ptask::viz
