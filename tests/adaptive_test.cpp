// Tests for the adaptive step-size controller.

#include <gtest/gtest.h>

#include <cmath>

#include "ptask/ode/adaptive.hpp"
#include "ptask/ode/bruss2d.hpp"
#include "ptask/ode/diirk.hpp"
#include "ptask/ode/epol.hpp"
#include "ptask/ode/irk.hpp"

namespace ptask::ode {
namespace {

// y' = -50 y: fast decay that demands small steps early and permits large
// ones later -- ideal for observing step-size growth.
class StiffDecay final : public OdeSystem {
 public:
  std::size_t size() const override { return 2; }
  void eval(double, std::span<const double> y, std::span<double> f,
            std::size_t begin, std::size_t end) const override {
    for (std::size_t i = begin; i < end; ++i) f[i] = -50.0 * y[i];
  }
  std::vector<double> initial_state() const override { return {1.0, -2.0}; }
  double eval_flop_per_component() const override { return 1.0; }
  bool is_dense() const override { return false; }
  std::string name() const override { return "stiff-decay"; }
};

TEST(ErrorNorm, WeightsByToleranceBands) {
  const std::vector<double> e{1e-6, 1e-6};
  const std::vector<double> y{0.0, 1.0};
  // First component scaled by atol only, second by atol + rtol.
  const double norm = error_norm(e, y, 1e-6, 1e-6);
  EXPECT_NEAR(norm, std::sqrt((1.0 + 0.25) / 2.0), 1e-12);
  const std::vector<double> wrong{1e-6};
  EXPECT_THROW(error_norm(wrong, y, 1e-6, 1e-6), std::invalid_argument);
}

TEST(Adaptive, MeetsToleranceOnDecay) {
  StiffDecay sys;
  Epol solver(4);
  AdaptiveOptions opts;
  opts.abs_tol = 1e-10;
  opts.rel_tol = 1e-8;
  const AdaptiveResult result =
      integrate_adaptive(solver, sys, 0.0, 1.0, 0.05, sys.initial_state(),
                         opts);
  EXPECT_NEAR(result.t_end, 1.0, 1e-12);
  EXPECT_NEAR(result.state[0], std::exp(-50.0), 1e-7);
  EXPECT_NEAR(result.state[1], -2.0 * std::exp(-50.0), 1e-7);
  EXPECT_GT(result.accepted, 0u);
}

TEST(Adaptive, StepSizeGrowsOnDecayingProblem) {
  StiffDecay sys;
  Irk solver(2, 5);
  AdaptiveOptions opts;
  opts.abs_tol = 1e-8;
  opts.rel_tol = 1e-8;
  opts.h_max = 0.5;
  const AdaptiveResult result = integrate_adaptive(
      solver, sys, 0.0, 2.0, 0.001, sys.initial_state(), opts);
  // Once the solution is tiny, steps should be much larger than h0.
  EXPECT_GT(result.max_h_used, 10.0 * result.min_h_used);
}

TEST(Adaptive, RejectsOversizedInitialStep) {
  StiffDecay sys;
  Epol solver(3);
  AdaptiveOptions opts;
  opts.abs_tol = 1e-10;
  opts.rel_tol = 1e-10;
  const AdaptiveResult result = integrate_adaptive(
      solver, sys, 0.0, 0.5, 0.4, sys.initial_state(), opts);
  EXPECT_GT(result.rejected, 0u);  // the 0.4 first step cannot pass
  EXPECT_NEAR(result.state[0], std::exp(-25.0), 1e-8);
}

TEST(Adaptive, TighterToleranceCostsMoreSteps) {
  const Bruss2D sys(5);
  Irk solver(2, 4);
  AdaptiveOptions loose;
  loose.abs_tol = loose.rel_tol = 1e-4;
  AdaptiveOptions tight;
  tight.abs_tol = tight.rel_tol = 1e-9;
  const AdaptiveResult a = integrate_adaptive(
      solver, sys, 0.0, 0.5, 0.05, sys.initial_state(), loose);
  const AdaptiveResult b = integrate_adaptive(
      solver, sys, 0.0, 0.5, 0.05, sys.initial_state(), tight);
  EXPECT_GT(b.accepted, a.accepted);
}

TEST(Adaptive, AgreesWithFixedStepReference) {
  const Bruss2D sys(5);
  Diirk solver(2, 4, 3);
  AdaptiveOptions opts;
  opts.abs_tol = opts.rel_tol = 1e-9;
  const AdaptiveResult adaptive = integrate_adaptive(
      solver, sys, 0.0, 0.2, 0.02, sys.initial_state(), opts);
  Diirk reference(2, 4, 3);
  const IntegrationResult fixed =
      reference.integrate(sys, 0.0, 0.2, 0.0005, sys.initial_state());
  EXPECT_LT(max_norm_diff(adaptive.state, fixed.state), 1e-6);
}

TEST(Adaptive, Validation) {
  StiffDecay sys;
  Epol solver(2);
  EXPECT_THROW(integrate_adaptive(solver, sys, 0.0, 1.0, -0.1,
                                  sys.initial_state()),
               std::invalid_argument);
  EXPECT_THROW(integrate_adaptive(solver, sys, 1.0, 0.0, 0.1,
                                  sys.initial_state()),
               std::invalid_argument);
  EXPECT_THROW(integrate_adaptive(solver, sys, 0.0, 1.0, 0.1, {1.0}),
               std::invalid_argument);
  // Unreachable tolerance at the h_min floor must raise, not loop forever.
  AdaptiveOptions impossible;
  impossible.abs_tol = impossible.rel_tol = 1e-16;
  impossible.h_min = 1e-3;
  impossible.max_steps = 10000;
  EXPECT_THROW(integrate_adaptive(solver, sys, 0.0, 1.0, 0.01,
                                  sys.initial_state(), impossible),
               std::runtime_error);
}

}  // namespace
}  // namespace ptask::ode
