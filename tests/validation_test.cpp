// Error-path coverage for sched::validate: every structural invariant is
// violated by a hand-built schedule and the specific diagnostic is asserted,
// so the fuzz harness's oracles can rely on validation actually firing.
// Also the regression tests for LayerSchedulerOptions::fixed_groups
// clamping (group counts beyond the layer width or the machine size).

#include <gtest/gtest.h>

#include <algorithm>

#include "ptask/arch/machine.hpp"
#include "ptask/cost/cost_model.hpp"
#include "ptask/sched/layer_scheduler.hpp"
#include "ptask/sched/validation.hpp"

namespace ptask::sched {
namespace {

/// True if any error message contains `needle`.
bool has_error(const ValidationReport& report, const std::string& needle) {
  return std::any_of(report.errors.begin(), report.errors.end(),
                     [&](const std::string& e) {
                       return e.find(needle) != std::string::npos;
                     });
}

std::string all_errors(const ValidationReport& report) {
  std::string joined;
  for (const std::string& e : report.errors) joined += e + "\n";
  return joined;
}

/// Three-task graph (a, b, c) with the given edges and an identity (no-op)
/// chain contraction, so layers address original task ids directly.
core::TaskGraph abc_graph(
    const std::vector<std::pair<core::TaskId, core::TaskId>>& edges = {}) {
  core::TaskGraph g;
  g.add_task(core::MTask("a", 1.0));
  g.add_task(core::MTask("b", 1.0));
  g.add_task(core::MTask("c", 1.0));
  for (const auto& [from, to] : edges) g.add_edge(from, to);
  return g;
}

LayeredSchedule identity_schedule(const core::TaskGraph& g, int total_cores) {
  LayeredSchedule s;
  s.total_cores = total_cores;
  s.contraction.contracted = g;
  s.contraction.members.resize(static_cast<std::size_t>(g.num_tasks()));
  s.contraction.representative.resize(static_cast<std::size_t>(g.num_tasks()));
  for (core::TaskId id = 0; id < g.num_tasks(); ++id) {
    s.contraction.members[static_cast<std::size_t>(id)] = {id};
    s.contraction.representative[static_cast<std::size_t>(id)] = id;
  }
  return s;
}

ScheduledLayer layer(std::vector<core::TaskId> tasks,
                     std::vector<int> group_sizes,
                     std::vector<int> task_group) {
  ScheduledLayer l;
  l.tasks = std::move(tasks);
  l.group_sizes = std::move(group_sizes);
  l.task_group = std::move(task_group);
  return l;
}

// ---- layered-schedule invariants ----

TEST(LayeredValidation, TaskInTwoLayersIsReported) {
  const core::TaskGraph g = abc_graph();
  LayeredSchedule s = identity_schedule(g, 4);
  s.layers.push_back(layer({0, 1}, {4}, {0, 0}));
  s.layers.push_back(layer({0, 2}, {4}, {0, 0}));
  const ValidationReport r = validate(s, g);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_error(r, "task 'a' (id 0) appears 2 times"))
      << all_errors(r);
}

TEST(LayeredValidation, MissingTaskIsReported) {
  const core::TaskGraph g = abc_graph();
  LayeredSchedule s = identity_schedule(g, 4);
  s.layers.push_back(layer({0, 1}, {4}, {0, 0}));
  const ValidationReport r = validate(s, g);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_error(r, "task 'c' (id 2) appears 0 times"))
      << all_errors(r);
}

TEST(LayeredValidation, DependentTasksSharingALayerAreReported) {
  const core::TaskGraph g = abc_graph({{0, 1}});
  LayeredSchedule s = identity_schedule(g, 4);
  s.layers.push_back(layer({0, 1}, {2, 2}, {0, 1}));
  s.layers.push_back(layer({2}, {4}, {0}));
  const ValidationReport r = validate(s, g);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_error(
      r, "dependent tasks share a layer: 'a' (id 0) and 'b' (id 1)"))
      << all_errors(r);
}

TEST(LayeredValidation, LayerOrderViolatingAnEdgeIsReported) {
  const core::TaskGraph g = abc_graph({{0, 1}});
  LayeredSchedule s = identity_schedule(g, 4);
  s.layers.push_back(layer({1, 2}, {2, 2}, {0, 1}));
  s.layers.push_back(layer({0}, {4}, {0}));
  const ValidationReport r = validate(s, g);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(
      has_error(r, "edge 'a' (id 0) -> 'b' (id 1) violated by layer order"))
      << all_errors(r);
}

TEST(LayeredValidation, GroupSizesNotSummingToTotalCoresAreReported) {
  const core::TaskGraph g = abc_graph();
  LayeredSchedule s = identity_schedule(g, 4);
  s.layers.push_back(layer({0, 1, 2}, {2, 1}, {0, 1, 0}));
  const ValidationReport r = validate(s, g);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_error(r, "group sizes sum to 3, expected 4"))
      << all_errors(r);
}

TEST(LayeredValidation, NonPositiveGroupSizeIsReported) {
  const core::TaskGraph g = abc_graph();
  LayeredSchedule s = identity_schedule(g, 4);
  s.layers.push_back(layer({0, 1, 2}, {4, 0}, {0, 0, 1}));
  const ValidationReport r = validate(s, g);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_error(r, "non-positive group size")) << all_errors(r);
}

TEST(LayeredValidation, TaskAssignedToMissingGroupIsReported) {
  const core::TaskGraph g = abc_graph();
  LayeredSchedule s = identity_schedule(g, 4);
  s.layers.push_back(layer({0, 1, 2}, {2, 2}, {0, 1, 5}));
  const ValidationReport r = validate(s, g);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_error(r, "task assigned to missing group"))
      << all_errors(r);
}

// ---- Gantt-schedule invariants ----

GanttSchedule gantt_for(const core::TaskGraph& g, int total_cores) {
  GanttSchedule s;
  s.total_cores = total_cores;
  s.slots.resize(static_cast<std::size_t>(g.num_tasks()));
  return s;
}

TEST(GanttValidation, OverlappingCoreSlotsAreReported) {
  const core::TaskGraph g = abc_graph();
  GanttSchedule s = gantt_for(g, 4);
  s.slots[0] = {{0, 1}, 0.0, 2.0};
  s.slots[1] = {{1, 2}, 1.0, 3.0};  // core 1 busy [0,2) and [1,3)
  s.slots[2] = {{3}, 0.0, 1.0};
  s.makespan = 3.0;
  const ValidationReport r = validate(s, g);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_error(r, "core 1 executes overlapping tasks"))
      << all_errors(r);
}

TEST(GanttValidation, TaskWithoutCoresIsReported) {
  const core::TaskGraph g = abc_graph();
  GanttSchedule s = gantt_for(g, 4);
  s.slots[0] = {{0}, 0.0, 1.0};
  s.slots[1] = {{}, 0.0, 1.0};
  s.slots[2] = {{1}, 0.0, 1.0};
  const ValidationReport r = validate(s, g);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_error(r, "task 'b' (id 1) has no cores")) << all_errors(r);
}

TEST(GanttValidation, CoreOutOfRangeIsReported) {
  const core::TaskGraph g = abc_graph();
  GanttSchedule s = gantt_for(g, 2);
  s.slots[0] = {{0}, 0.0, 1.0};
  s.slots[1] = {{1}, 0.0, 1.0};
  s.slots[2] = {{2}, 0.0, 1.0};  // total_cores is 2
  const ValidationReport r = validate(s, g);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_error(r, "task 'c' (id 2) uses core out of range"))
      << all_errors(r);
}

TEST(GanttValidation, StartBeforePredecessorFinishIsReported) {
  const core::TaskGraph g = abc_graph({{0, 1}});
  GanttSchedule s = gantt_for(g, 4);
  s.slots[0] = {{0}, 0.0, 2.0};
  s.slots[1] = {{1}, 1.0, 3.0};  // starts before a finishes
  s.slots[2] = {{2}, 0.0, 1.0};
  const ValidationReport r = validate(s, g);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_error(
      r, "task 'b' (id 1) starts before predecessor 'a' (id 0) finishes"))
      << all_errors(r);
}

TEST(GanttValidation, NegativeDurationIsReported) {
  const core::TaskGraph g = abc_graph();
  GanttSchedule s = gantt_for(g, 4);
  s.slots[0] = {{0}, 2.0, 1.0};  // finish < start
  s.slots[1] = {{1}, 0.0, 1.0};
  s.slots[2] = {{2}, 0.0, 1.0};
  const ValidationReport r = validate(s, g);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_error(r, "task 'a' (id 0) finishes early"))
      << all_errors(r);
}

// ---- fixed_groups clamping regressions ----

arch::Machine machine() {
  arch::MachineSpec spec = arch::chic();
  spec.num_nodes = 4;  // 16 cores
  return arch::Machine(spec);
}

core::TaskGraph independent_tasks(int n) {
  core::TaskGraph g;
  for (int i = 0; i < n; ++i) {
    g.add_task(core::MTask("t" + std::to_string(i), 1.0e9));
  }
  return g;
}

TEST(FixedGroupsClamping, MoreGroupsThanLayerTasksProducesValidSchedule) {
  const core::TaskGraph g = independent_tasks(3);
  const cost::CostModel cm(machine());
  LayerSchedulerOptions opts;
  opts.fixed_groups = 64;  // layer only has 3 tasks
  const LayeredSchedule s = LayerScheduler(cm, opts).schedule(g, 8);
  const ValidationReport r = validate(s, g);
  EXPECT_TRUE(r.ok()) << all_errors(r);
  ASSERT_EQ(s.layers.size(), 1u);
  // Clamped to the layer's task count: no empty/degenerate groups.
  EXPECT_EQ(s.layers[0].num_groups(), 3);
  for (int size : s.layers[0].group_sizes) EXPECT_GE(size, 1);
}

TEST(FixedGroupsClamping, MoreGroupsThanCoresProducesValidSchedule) {
  const core::TaskGraph g = independent_tasks(12);
  const cost::CostModel cm(machine());
  LayerSchedulerOptions opts;
  opts.fixed_groups = 16;  // only 4 cores available
  const LayeredSchedule s = LayerScheduler(cm, opts).schedule(g, 4);
  const ValidationReport r = validate(s, g);
  EXPECT_TRUE(r.ok()) << all_errors(r);
  ASSERT_EQ(s.layers.size(), 1u);
  // Clamped to the core count: every group keeps >= 1 core.
  EXPECT_EQ(s.layers[0].num_groups(), 4);
  for (int size : s.layers[0].group_sizes) EXPECT_GE(size, 1);
}

TEST(FixedGroupsClamping, SingleTaskLayerDegradesToOneGroup) {
  core::TaskGraph g;
  const core::TaskId a = g.add_task(core::MTask("a", 1.0e9));
  const core::TaskId b = g.add_task(core::MTask("b", 1.0e9));
  g.add_edge(a, b);  // two one-task layers (contracted into one chain)
  const cost::CostModel cm(machine());
  LayerSchedulerOptions opts;
  opts.fixed_groups = 8;
  opts.contract_chains = false;
  const LayeredSchedule s = LayerScheduler(cm, opts).schedule(g, 8);
  const ValidationReport r = validate(s, g);
  EXPECT_TRUE(r.ok()) << all_errors(r);
  for (const ScheduledLayer& l : s.layers) {
    EXPECT_EQ(l.num_groups(), 1);
    EXPECT_EQ(l.group_sizes[0], 8);
  }
}

}  // namespace
}  // namespace ptask::sched
