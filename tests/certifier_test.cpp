// Unit coverage for ptask::analysis::certify, the independent schedule
// certifier: a handmade feasible schedule certifies clean (the negative for
// every PTC00x code at once), and one targeted corruption per code triggers
// exactly that diagnostic.  Real registry schedulers must certify clean on
// a real graph, the certificate hash must tie to the canonical schedule
// bytes, and render_json must carry the machine-checkable evidence.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ptask/analysis/certifier.hpp"
#include "ptask/arch/machine.hpp"
#include "ptask/cost/cost_model.hpp"
#include "ptask/sched/registry.hpp"
#include "ptask/sched/schedule.hpp"
#include "ptask/serve/protocol.hpp"

namespace ptask::analysis {
namespace {

/// Original graph of the handmade fixture: a -> b plus an independent c.
core::TaskGraph fixture_graph() {
  core::TaskGraph g;
  const core::TaskId a = g.add_task(core::MTask("a", 1.0e9));
  const core::TaskId b = g.add_task(core::MTask("b", 1.0e9));
  g.add_task(core::MTask("c", 1.0e9));
  g.add_edge(a, b);
  return g;
}

/// A feasible two-layer schedule over 3 symbolic cores, built by hand so
/// tests can corrupt exactly one invariant at a time:
///   layer 0: a on core {0} at [0, 1), c on cores {1, 2} at [0, 1.5)
///   layer 1: b on core {0} at [1, 2)
sched::Schedule fixture_schedule(const core::TaskGraph& g) {
  sched::Schedule s;
  s.strategy = "handmade";
  s.layered.total_cores = 3;
  s.layered.contraction.contracted = g;
  for (core::TaskId id = 0; id < g.num_tasks(); ++id) {
    s.layered.contraction.members.push_back({id});
    s.layered.contraction.representative.push_back(id);
  }
  sched::ScheduledLayer layer0;
  layer0.tasks = {0, 2};
  layer0.group_sizes = {1, 2};
  layer0.task_group = {0, 1};
  sched::ScheduledLayer layer1;
  layer1.tasks = {1};
  layer1.group_sizes = {1, 2};
  layer1.task_group = {0};
  s.layered.layers = {layer0, layer1};
  s.gantt.total_cores = 3;
  s.gantt.slots = {{{0}, 0.0, 1.0}, {{0}, 1.0, 2.0}, {{1, 2}, 0.0, 1.5}};
  s.gantt.makespan = 2.0;
  s.allocation = {1, 1, 2};
  return s;
}

const std::vector<std::string_view>& all_ptc_codes() {
  static const std::vector<std::string_view> codes = {
      kCertPrecedence, kCertOverlap,    kCertAllocation,
      kCertMakespan,   kCertLowerBound, kCertStructure};
  return codes;
}

// ---- the feasible fixture is the negative case for every code ----

TEST(Certifier, FeasibleHandmadeScheduleCertifiesClean) {
  const core::TaskGraph g = fixture_graph();
  const Certificate cert = certify(g, fixture_schedule(g));
  EXPECT_TRUE(cert.ok()) << render_text(cert.report);
  for (const std::string_view code : all_ptc_codes()) {
    EXPECT_FALSE(cert.report.has(code)) << code;
  }
  EXPECT_DOUBLE_EQ(cert.makespan, 2.0);
  // Critical path a -> b from the slot durations: 1 + 1.
  EXPECT_DOUBLE_EQ(cert.critical_path_bound, 2.0);
  // Core-time (1*1 + 1*1 + 1.5*2) over 3 cores.
  EXPECT_DOUBLE_EQ(cert.work_bound, 5.0 / 3.0);
  ASSERT_EQ(cert.layer_bounds.size(), 2u);
  EXPECT_DOUBLE_EQ(cert.layer_bounds[0].start, 0.0);
  EXPECT_DOUBLE_EQ(cert.layer_bounds[0].finish, 1.5);
  EXPECT_DOUBLE_EQ(cert.layer_bounds[1].start, 1.0);
  EXPECT_DOUBLE_EQ(cert.layer_bounds[1].finish, 2.0);
  // One interval per occupied core: a@0, b@0, c@1, c@2.
  EXPECT_EQ(cert.intervals.size(), 4u);
}

// ---- PTC001: precedence ----

TEST(Certifier, Ptc001SuccessorStartingEarlyIsReported) {
  const core::TaskGraph g = fixture_graph();
  sched::Schedule s = fixture_schedule(g);
  // b (successor of a) rescheduled onto free core 1 starting at 0.5, before
  // a finishes at 1.0.  Every other invariant is kept intact: one task per
  // core, groups of width 1, makespan equal to the last finish (1.5) and
  // still >= both lower bounds (critical path 1 + 0.5, work 3.0 / 3).
  s.gantt.slots = {{{0}, 0.0, 1.0}, {{1}, 0.5, 1.0}, {{2}, 0.0, 1.5}};
  s.gantt.makespan = 1.5;
  s.allocation = {1, 1, 1};
  s.layered.layers[0].group_sizes = {1, 1, 1};
  s.layered.layers[0].task_group = {0, 1};
  s.layered.layers[1].group_sizes = {1, 1, 1};
  s.layered.layers[1].task_group = {0};
  const Certificate cert = certify(g, s);
  EXPECT_FALSE(cert.ok());
  EXPECT_TRUE(cert.report.has(kCertPrecedence)) << render_text(cert.report);
  // The corruption is caught by a *distinct* diagnostic: nothing else fires.
  for (const std::string_view code : all_ptc_codes()) {
    if (code == kCertPrecedence) continue;
    EXPECT_FALSE(cert.report.has(code)) << code << "\n"
                                        << render_text(cert.report);
  }
}

// ---- PTC002: per-core occupancy ----

TEST(Certifier, Ptc002OverlappingSlotsOnOneCoreAreReported) {
  const core::TaskGraph g = fixture_graph();
  sched::Schedule s = fixture_schedule(g);
  // c moves onto core 0 where a occupies [0, 1).
  s.gantt.slots[2] = {{0}, 0.0, 1.5};
  s.allocation[2] = 1;
  s.layered.layers[0].group_sizes = {1, 2};
  s.layered.layers[0].task_group = {0, 0};
  const Certificate cert = certify(g, s);
  EXPECT_TRUE(cert.report.has(kCertOverlap)) << render_text(cert.report);
}

TEST(Certifier, Ptc002BackToBackSlotsAreNotAnOverlap) {
  const core::TaskGraph g = fixture_graph();
  const Certificate cert = certify(g, fixture_schedule(g));
  // a [0,1) and b [1,2) share core 0 back-to-back: no overlap.
  EXPECT_FALSE(cert.report.has(kCertOverlap));
}

// ---- PTC003: allocation / group bounds ----

TEST(Certifier, Ptc003AllocationDisagreeingWithSlotWidthIsReported) {
  const core::TaskGraph g = fixture_graph();
  sched::Schedule s = fixture_schedule(g);
  s.allocation[0] = 2;  // slot of a spans one core
  const Certificate cert = certify(g, s);
  EXPECT_TRUE(cert.report.has(kCertAllocation)) << render_text(cert.report);
}

TEST(Certifier, Ptc003CoreOutsideTheMachineIsReported) {
  const core::TaskGraph g = fixture_graph();
  sched::Schedule s = fixture_schedule(g);
  s.gantt.slots[0].cores = {7};  // machine is [0, 3)
  const Certificate cert = certify(g, s);
  EXPECT_TRUE(cert.report.has(kCertAllocation));
}

TEST(Certifier, Ptc003OversubscribedLayerGroupsAreReported) {
  const core::TaskGraph g = fixture_graph();
  sched::Schedule s = fixture_schedule(g);
  s.layered.layers[0].group_sizes = {2, 2};  // sums to 4 on a 3-core machine
  const Certificate cert = certify(g, s);
  EXPECT_TRUE(cert.report.has(kCertAllocation));
  bool oversubscribed_mentioned = false;
  for (const Diagnostic& d : cert.report.diagnostics) {
    oversubscribed_mentioned |=
        d.message.find("oversubscribed") != std::string::npos;
  }
  EXPECT_TRUE(oversubscribed_mentioned) << render_text(cert.report);
}

// ---- PTC004: makespan arithmetic ----

TEST(Certifier, Ptc004MakespanNotEqualToLastFinishIsReported) {
  const core::TaskGraph g = fixture_graph();
  sched::Schedule s = fixture_schedule(g);
  s.gantt.makespan = 5.0;  // last slot finishes at 2.0
  const Certificate cert = certify(g, s);
  EXPECT_TRUE(cert.report.has(kCertMakespan)) << render_text(cert.report);
}

TEST(Certifier, Ptc004SlotFinishingPastTheMakespanIsReported) {
  const core::TaskGraph g = fixture_graph();
  sched::Schedule s = fixture_schedule(g);
  s.gantt.makespan = 1.6;  // b finishes at 2.0
  const Certificate cert = certify(g, s);
  EXPECT_TRUE(cert.report.has(kCertMakespan));
}

TEST(Certifier, Ptc004NegativeStartAndInvertedSlotAreReported) {
  const core::TaskGraph g = fixture_graph();
  sched::Schedule s = fixture_schedule(g);
  s.gantt.slots[2] = {{1, 2}, 1.5, 0.0};  // finish before start
  const Certificate cert = certify(g, s);
  EXPECT_TRUE(cert.report.has(kCertMakespan));
}

// ---- PTC005: symbolic lower bounds ----

TEST(Certifier, Ptc005MakespanBelowTheCriticalPathIsReported) {
  const core::TaskGraph g = fixture_graph();
  sched::Schedule s = fixture_schedule(g);
  // Collapse every start to 0 (the fuzz oracle's "bound violation"
  // corruption): makespan 1.5 < critical path a->b of 2.0.
  s.gantt.slots[0] = {{0}, 0.0, 1.0};
  s.gantt.slots[1] = {{2}, 0.0, 1.0};
  s.gantt.slots[2] = {{1}, 0.0, 1.5};
  s.allocation = {1, 1, 1};
  s.layered.layers.clear();
  s.gantt.makespan = 1.5;
  const Certificate cert = certify(g, s);
  EXPECT_TRUE(cert.report.has(kCertLowerBound)) << render_text(cert.report);
}

TEST(Certifier, Ptc005MakespanAboveBothBoundsIsClean) {
  const core::TaskGraph g = fixture_graph();
  const Certificate cert = certify(g, fixture_schedule(g));
  EXPECT_FALSE(cert.report.has(kCertLowerBound));
  EXPECT_GE(cert.makespan, cert.critical_path_bound);
  EXPECT_GE(cert.makespan, cert.work_bound);
}

// ---- PTC006: structure ----

TEST(Certifier, Ptc006TruncatedSlotTableIsReported) {
  const core::TaskGraph g = fixture_graph();
  sched::Schedule s = fixture_schedule(g);
  s.gantt.slots.resize(2);
  const Certificate cert = certify(g, s);
  EXPECT_TRUE(cert.report.has(kCertStructure)) << render_text(cert.report);
}

TEST(Certifier, Ptc006ContractionNotCoveringTheGraphIsReported) {
  const core::TaskGraph g = fixture_graph();
  sched::Schedule s = fixture_schedule(g);
  s.layered.contraction.representative.resize(2);
  const Certificate cert = certify(g, s);
  EXPECT_TRUE(cert.report.has(kCertStructure));
}

TEST(Certifier, Ptc006TaskMissingFromEveryLayerIsReported) {
  const core::TaskGraph g = fixture_graph();
  sched::Schedule s = fixture_schedule(g);
  s.layered.layers[1].tasks.clear();  // b no longer appears in any layer
  s.layered.layers[1].task_group.clear();
  const Certificate cert = certify(g, s);
  EXPECT_TRUE(cert.report.has(kCertStructure)) << render_text(cert.report);
}

TEST(Certifier, Ptc006DroppedOriginalEdgeIsReported) {
  core::TaskGraph original = fixture_graph();
  const core::TaskGraph contracted_without_edge = [] {
    core::TaskGraph g;
    g.add_task(core::MTask("a", 1.0e9));
    g.add_task(core::MTask("b", 1.0e9));
    g.add_task(core::MTask("c", 1.0e9));
    return g;  // a -> b silently dropped
  }();
  sched::Schedule s = fixture_schedule(contracted_without_edge);
  const Certificate cert = certify(original, s);
  EXPECT_TRUE(cert.report.has(kCertStructure)) << render_text(cert.report);
}

// ---- hashing ----

TEST(CertifierHash, Fnv1a64MatchesTheReferenceConstants) {
  EXPECT_EQ(fnv1a64(""), 14695981039346656037ull);
  // One step by hand: (basis ^ 'a') * prime.
  EXPECT_EQ(fnv1a64("a"),
            (14695981039346656037ull ^ static_cast<std::uint64_t>('a')) *
                1099511628211ull);
  EXPECT_NE(fnv1a64("schedule"), fnv1a64("schedulf"));
}

TEST(CertifierHash, HashHexIsZeroPaddedLowercase) {
  EXPECT_EQ(hash_hex(0), "0x0000000000000000");
  EXPECT_EQ(hash_hex(0xdeadbeefull), "0x00000000deadbeef");
  EXPECT_EQ(hash_hex(fnv1a64("x")).size(), 18u);
}

TEST(CertifierHash, CertificateHashTiesToTheCanonicalScheduleBytes) {
  const core::TaskGraph g = fixture_graph();
  const sched::Schedule s = fixture_schedule(g);
  const Certificate cert = certify(g, s);
  EXPECT_EQ(cert.schedule_hash, fnv1a64(serve::serialize_schedule(s)));
  EXPECT_NE(cert.schedule_hash, 0u);
  // Deterministic: certifying again yields the identical fingerprint.
  EXPECT_EQ(certify(g, s).schedule_hash, cert.schedule_hash);
}

// ---- real schedulers certify clean ----

TEST(Certifier, EveryRegistrySchedulerProducesACertifiableSchedule) {
  core::TaskGraph g;
  const core::TaskId a = g.add_task(core::MTask("a", 2.0e9));
  const core::TaskId b = g.add_task(core::MTask("b", 1.0e9));
  const core::TaskId c = g.add_task(core::MTask("c", 1.5e9));
  const core::TaskId d = g.add_task(core::MTask("d", 2.5e9));
  g.add_edge(a, b);
  g.add_edge(a, c);
  g.add_edge(b, d);
  g.add_edge(c, d);
  g.add_start_stop_markers();
  const cost::CostModel cost{arch::Machine(arch::chic())};
  for (const std::string& name : sched::SchedulerRegistry::instance().names()) {
    const sched::Schedule schedule =
        sched::SchedulerRegistry::instance().make(name, cost)->run(g, 8);
    const Certificate cert = certify(g, schedule);
    EXPECT_TRUE(cert.ok()) << name << ":\n" << render_text(cert.report);
  }
}

// ---- options and rendering ----

TEST(Certifier, RecordIntervalsOffKeepsTheChecksButDropsTheEvidence) {
  const core::TaskGraph g = fixture_graph();
  sched::Schedule s = fixture_schedule(g);
  CertifierOptions options;
  options.record_intervals = false;
  EXPECT_TRUE(certify(g, s, options).intervals.empty());
  // The occupancy check itself still runs.
  s.gantt.slots[2] = {{0}, 0.0, 1.5};
  s.allocation[2] = 1;
  s.layered.layers[0].task_group = {0, 0};
  const Certificate corrupt = certify(g, s, options);
  EXPECT_TRUE(corrupt.report.has(kCertOverlap));
  EXPECT_TRUE(corrupt.intervals.empty());
}

TEST(Certifier, RenderJsonCarriesVerdictHashBoundsAndEvidence) {
  const core::TaskGraph g = fixture_graph();
  const Certificate cert = certify(g, fixture_schedule(g));
  const std::string json = render_json(cert);
  EXPECT_NE(json.find("\"ok\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"schedule_hash\":\"0x"), std::string::npos);
  EXPECT_NE(json.find("\"bounds\":{\"critical_path\":"), std::string::npos);
  EXPECT_NE(json.find("\"work_over_p\":"), std::string::npos);
  EXPECT_NE(json.find("\"layers\":[{"), std::string::npos);
  EXPECT_NE(json.find("\"intervals\":[{"), std::string::npos);
  EXPECT_NE(json.find("\"report\":{"), std::string::npos);
}

TEST(Certifier, EveryPtcCodeHasADescription) {
  for (const std::string_view code : all_ptc_codes()) {
    EXPECT_FALSE(describe(code).empty()) << code;
  }
}

}  // namespace
}  // namespace ptask::analysis
