// Tests for the multi-zone benchmark module: zone geometry, step graphs,
// scheduling behaviour, and the real stencil kernel.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "ptask/npb/multizone.hpp"
#include "ptask/npb/stencil.hpp"
#include "ptask/npb/zones.hpp"
#include "ptask/sched/layer_scheduler.hpp"
#include "ptask/sched/validation.hpp"

namespace ptask::npb {
namespace {

TEST(Zones, ClassTableMatchesNpbMz) {
  const MultiZoneProblem c = make_problem(MzSolver::SP, 'C');
  EXPECT_EQ(c.num_zones(), 256);
  EXPECT_EQ(c.global.nx, 480);
  EXPECT_EQ(c.global.ny, 320);
  EXPECT_EQ(c.global.nz, 28);

  const MultiZoneProblem d = make_problem(MzSolver::BT, 'D');
  EXPECT_EQ(d.num_zones(), 1024);
  EXPECT_EQ(d.global.nx, 1632);
  EXPECT_THROW(make_problem(MzSolver::SP, 'Z'), std::invalid_argument);
}

TEST(Zones, SpZonesAreEqualSized) {
  const MultiZoneProblem p = make_problem(MzSolver::SP, 'C');
  EXPECT_NEAR(p.imbalance_ratio(), 1.0, 0.15);  // remainder spread only
}

TEST(Zones, BtZonesAreSkewedRoughly20x) {
  const MultiZoneProblem p = make_problem(MzSolver::BT, 'C');
  EXPECT_GT(p.imbalance_ratio(), 8.0);
  EXPECT_LT(p.imbalance_ratio(), 50.0);
}

TEST(Zones, PartitionCoversGlobalGrid) {
  for (MzSolver solver : {MzSolver::SP, MzSolver::BT}) {
    for (char cls : {'S', 'W', 'A', 'B', 'C'}) {
      const MultiZoneProblem p = make_problem(solver, cls);
      // Sum of zone x-widths along one row == global nx, similarly for y.
      int x_total = 0;
      for (int ix = 0; ix < p.x_zones; ++ix) {
        x_total += p.zones[static_cast<std::size_t>(ix)].nx;
      }
      EXPECT_EQ(x_total, p.global.nx) << p.name();
      int y_total = 0;
      for (int iy = 0; iy < p.y_zones; ++iy) {
        y_total += p.zones[static_cast<std::size_t>(iy * p.x_zones)].ny;
      }
      EXPECT_EQ(y_total, p.global.ny) << p.name();
      EXPECT_EQ(p.total_points(),
                static_cast<std::size_t>(p.global.nx) *
                    static_cast<std::size_t>(p.global.ny) *
                    static_cast<std::size_t>(p.global.nz))
          << p.name();
    }
  }
}

TEST(Zones, Names) {
  EXPECT_EQ(make_problem(MzSolver::SP, 'C').name(), "SP-MZ.C");
  EXPECT_EQ(make_problem(MzSolver::BT, 'D').name(), "BT-MZ.D");
}

TEST(Multizone, FlopPerPointOrdering) {
  EXPECT_GT(flop_per_point(MzSolver::BT), flop_per_point(MzSolver::SP));
}

TEST(Multizone, BorderBytesScaleWithFaces) {
  const ZoneGrid z{10, 20, 5};
  // 2*(20*5 + 10*5) faces * 5 vars * 8 bytes.
  EXPECT_EQ(border_bytes(z), 2u * (100 + 50) * 5 * 8);
}

TEST(Multizone, StepGraphHasOneTaskPerZone) {
  const MultiZoneProblem p = make_problem(MzSolver::SP, 'W');
  const core::TaskGraph g = step_graph(p);
  EXPECT_EQ(g.num_tasks(), p.num_zones() + 1);  // zones + sync marker
  int zone_tasks = 0;
  for (core::TaskId id = 0; id < g.num_tasks(); ++id) {
    if (!g.task(id).is_marker()) {
      ++zone_tasks;
      EXPECT_EQ(g.task(id).comms().size(), 3u);
    }
  }
  EXPECT_EQ(zone_tasks, p.num_zones());
}

TEST(Multizone, ZoneWorkTracksZoneSize) {
  const MultiZoneProblem p = make_problem(MzSolver::BT, 'W');
  const core::TaskGraph g = step_graph(p);
  double total = 0.0;
  for (core::TaskId id = 0; id < g.num_tasks(); ++id) {
    total += g.task(id).work_flop();
  }
  EXPECT_NEAR(total,
              flop_per_point(MzSolver::BT) *
                  static_cast<double>(p.total_points()),
              1.0);
}

TEST(Multizone, ScheduleWithFixedGroupsIsValid) {
  const MultiZoneProblem p = make_problem(MzSolver::BT, 'W');  // 16 zones
  const core::TaskGraph g = step_graph(p);
  arch::MachineSpec spec = arch::chic();
  spec.num_nodes = 16;
  const cost::CostModel cm((arch::Machine(spec)));
  for (int groups : {1, 2, 4, 8, 16}) {
    sched::LayerSchedulerOptions opts;
    opts.fixed_groups = groups;
    const sched::LayeredSchedule s =
        sched::LayerScheduler(cm, opts).schedule(g, 64);
    EXPECT_EQ(s.layers[0].num_groups(), groups);
    EXPECT_TRUE(sched::validate(s, g).ok()) << groups;
  }
}

TEST(Multizone, BtLoadImbalanceGrowsWithGroupCount) {
  // With one zone per group, the skewed BT-MZ zones leave small-zone groups
  // idle; the per-group accumulated work spread must shrink when zones are
  // clustered (after group-size adjustment both are balanced, so compare
  // the un-adjusted accumulated work).
  const MultiZoneProblem p = make_problem(MzSolver::BT, 'A');  // 16 zones
  const core::TaskGraph g = step_graph(p);
  arch::MachineSpec spec = arch::chic();
  spec.num_nodes = 16;
  const cost::CostModel cm((arch::Machine(spec)));

  auto work_spread = [&](int groups) {
    sched::LayerSchedulerOptions opts;
    opts.fixed_groups = groups;
    opts.adjust_group_sizes = false;
    const sched::LayeredSchedule s =
        sched::LayerScheduler(cm, opts).schedule(g, 64);
    std::vector<double> acc(static_cast<std::size_t>(groups), 0.0);
    const sched::ScheduledLayer& layer = s.layers[0];
    for (std::size_t i = 0; i < layer.tasks.size(); ++i) {
      acc[static_cast<std::size_t>(layer.task_group[i])] +=
          s.contraction.contracted.task(layer.tasks[i]).work_flop();
    }
    const double max = *std::max_element(acc.begin(), acc.end());
    const double min = *std::min_element(acc.begin(), acc.end());
    return max / std::max(min, 1.0);
  };
  EXPECT_GT(work_spread(16), work_spread(4));
}

// --- real stencil kernel ---

TEST(ZoneField, InitAndAccess) {
  ZoneField f(ZoneGrid{4, 3, 2});
  f.initialize(0, 0, 4, 3);
  EXPECT_NE(f.at(0, 0, 0), 0.0);
  EXPECT_DOUBLE_EQ(f.interior_max(),
                   [&] {
                     double best = 0.0;
                     for (int y = 0; y < 3; ++y)
                       for (int x = 0; x < 4; ++x)
                         for (int z = 0; z < 2; ++z)
                           best = std::max(best, std::abs(f.at(x, y, z)));
                     return best;
                   }());
}

TEST(ZoneField, JacobiConvergesTowardsGhostValues) {
  // With zero ghosts everywhere, repeated sweeps drive the interior to 0.
  ZoneField f(ZoneGrid{6, 6, 4});
  f.initialize(0, 0, 6, 6);
  double residual = 1.0;
  for (int it = 0; it < 200; ++it) {
    residual = f.jacobi_sweep(0, 6);
    f.commit();
  }
  EXPECT_LT(residual, 1e-3);
  EXPECT_LT(f.interior_max(), 0.5);
}

TEST(ZoneField, SweepBySubrangesMatchesFullSweep) {
  ZoneField a(ZoneGrid{5, 8, 3});
  ZoneField b(ZoneGrid{5, 8, 3});
  a.initialize(2, 3, 16, 16);
  b.initialize(2, 3, 16, 16);
  const double ra = a.jacobi_sweep(0, 8);
  const double rb =
      std::max(b.jacobi_sweep(0, 3), std::max(b.jacobi_sweep(3, 6),
                                              b.jacobi_sweep(6, 8)));
  a.commit();
  b.commit();
  EXPECT_DOUBLE_EQ(ra, rb);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 5; ++x) {
      for (int z = 0; z < 3; ++z) {
        EXPECT_DOUBLE_EQ(a.at(x, y, z), b.at(x, y, z));
      }
    }
  }
}

TEST(ZoneField, FaceExchangeRoundTrips) {
  ZoneField left(ZoneGrid{4, 6, 2});
  ZoneField right(ZoneGrid{3, 6, 2});
  left.initialize(0, 0, 7, 6);
  right.initialize(4, 0, 7, 6);
  // Exchange the +x face of `left` with the -x ghost of `right` and vice
  // versa.
  std::vector<double> buf(left.face_size(1));
  left.extract_face(1, buf);
  right.set_ghost_face(0, buf);
  std::vector<double> buf2(right.face_size(0));
  right.extract_face(0, buf2);
  left.set_ghost_face(1, buf2);
  // Ghost cells now mirror the neighbour's interior.
  for (int y = 0; y < 6; ++y) {
    for (int z = 0; z < 2; ++z) {
      EXPECT_DOUBLE_EQ(right.at(-1, y, z), left.at(3, y, z));
      EXPECT_DOUBLE_EQ(left.at(4, y, z), right.at(0, y, z));
    }
  }
}

TEST(ZoneField, FaceSizeAndValidation) {
  ZoneField f(ZoneGrid{4, 6, 2});
  EXPECT_EQ(f.face_size(0), 12u);
  EXPECT_EQ(f.face_size(2), 8u);
  EXPECT_THROW(f.face_size(4), std::invalid_argument);
  std::vector<double> tiny(1);
  EXPECT_THROW(f.extract_face(0, tiny), std::invalid_argument);
  EXPECT_THROW(ZoneField(ZoneGrid{0, 1, 1}), std::invalid_argument);
}

}  // namespace
}  // namespace ptask::npb
