// Unit coverage for ptask::analysis: every PTA0xx diagnostic code has at
// least one test that triggers it on a minimal graph (positive) and one
// showing the well-formed variant stays silent (negative), plus rendering
// and report-plumbing checks.  The minimal triggers mirror the examples in
// docs/ANALYSIS.md.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ptask/analysis/analyzer.hpp"
#include "ptask/arch/machine.hpp"
#include "ptask/cost/cost_model.hpp"
#include "ptask/sched/registry.hpp"
#include "ptask/sched/schedule.hpp"

namespace ptask::analysis {
namespace {

core::Param input(std::string name, std::size_t bytes) {
  return core::Param{std::move(name), bytes,
                     dist::Distribution::replicated(), true, false};
}

core::Param output(std::string name, std::size_t bytes) {
  return core::Param{std::move(name), bytes,
                     dist::Distribution::replicated(), false, true};
}

core::MTask task_with(const std::string& name,
                      std::vector<core::Param> params,
                      double work = 1.0e9) {
  core::MTask t(name, work);
  for (core::Param& p : params) t.add_param(std::move(p));
  return t;
}

Report analyze(const core::TaskGraph& g) { return Analyzer().analyze(g); }

// ---- PTA001: WAW race ----

TEST(RacePass, IndependentWritersOfOneVarAreAWawRace) {
  core::TaskGraph g;
  g.add_task(task_with("w1", {output("x", 64)}));
  g.add_task(task_with("w2", {output("x", 64)}));
  const Report r = analyze(g);
  ASSERT_EQ(r.count(kRaceWaw), 1);
  EXPECT_FALSE(r.clean());
  const Diagnostic& d = r.diagnostics.front();
  EXPECT_EQ(d.severity, Severity::Error);
  EXPECT_EQ(d.tasks, (std::vector<core::TaskId>{0, 1}));
  EXPECT_EQ(d.task_names, (std::vector<std::string>{"w1", "w2"}));
  EXPECT_EQ(d.vars, (std::vector<std::string>{"x"}));
}

TEST(RacePass, OrderedWritersAreNotAWawRace) {
  core::TaskGraph g;
  const core::TaskId a = g.add_task(task_with("w1", {output("x", 64)}));
  const core::TaskId b = g.add_task(task_with("w2", {output("x", 64)}));
  g.add_edge(a, b);
  const Report r = analyze(g);
  EXPECT_EQ(r.count(kRaceWaw), 0);
  EXPECT_TRUE(r.clean());
}

// ---- PTA002: RAW/WAR race ----

TEST(RacePass, UnorderedReaderWriterPairIsARawRace) {
  core::TaskGraph g;
  g.add_task(task_with("w", {output("x", 64)}));
  g.add_task(task_with("r", {input("x", 64)}));
  const Report r = analyze(g);
  ASSERT_EQ(r.count(kRaceRaw), 1);
  EXPECT_EQ(r.diagnostics.front().vars,
            (std::vector<std::string>{"x"}));
}

TEST(RacePass, OrderedReaderWriterPairIsNotARace) {
  core::TaskGraph g;
  const core::TaskId w = g.add_task(task_with("w", {output("x", 64)}));
  const core::TaskId r_ = g.add_task(task_with("r", {input("x", 64)}));
  g.add_edge(w, r_);
  const Report r = analyze(g);
  EXPECT_EQ(r.count(kRaceRaw), 0);
  EXPECT_TRUE(r.clean());
}

TEST(RacePass, ReaderThatAlsoWritesIsReportedOnceAsWaw) {
  core::TaskGraph g;
  g.add_task(task_with("w", {output("x", 64)}));
  g.add_task(task_with("rw", {input("x", 64), output("x", 64)}));
  const Report r = analyze(g);
  EXPECT_EQ(r.count(kRaceWaw), 1);
  EXPECT_EQ(r.count(kRaceRaw), 0);
}

// ---- PTA010: producer/consumer size mismatch ----

TEST(SizePass, MismatchedByteSizesOnAnEdgeAreReported) {
  core::TaskGraph g;
  const core::TaskId u = g.add_task(task_with("p", {output("x", 64)}));
  const core::TaskId v = g.add_task(task_with("c", {input("x", 128)}));
  g.add_edge(u, v);
  const Report r = analyze(g);
  ASSERT_EQ(r.count(kSizeMismatch), 1);
  EXPECT_FALSE(r.clean());
  EXPECT_NE(r.diagnostics.front().message.find("64"), std::string::npos);
  EXPECT_NE(r.diagnostics.front().message.find("128"), std::string::npos);
}

TEST(SizePass, MatchingByteSizesAreClean) {
  core::TaskGraph g;
  const core::TaskId u = g.add_task(task_with("p", {output("x", 128)}));
  const core::TaskId v = g.add_task(task_with("c", {input("x", 128)}));
  g.add_edge(u, v);
  const Report r = analyze(g);
  EXPECT_EQ(r.count(kSizeMismatch), 0);
  EXPECT_TRUE(r.clean());
}

// ---- PTA011: ill-defined re-distribution payload ----

TEST(SizePass, PayloadNotAMultipleOfTheElementSizeIsReported) {
  core::TaskGraph g;
  const core::TaskId u = g.add_task(task_with("p", {output("x", 12)}));
  const core::TaskId v = g.add_task(task_with("c", {input("x", 12)}));
  g.add_edge(u, v);
  const Report r = analyze(g);  // default element size: sizeof(double) == 8
  EXPECT_EQ(r.count(kSizeMismatch), 0);
  ASSERT_EQ(r.count(kBadRedistribution), 1);
  EXPECT_FALSE(r.clean());
}

TEST(SizePass, ElementAlignedPayloadIsClean) {
  core::TaskGraph g;
  const core::TaskId u = g.add_task(task_with("p", {output("x", 64)}));
  const core::TaskId v = g.add_task(task_with("c", {input("x", 64)}));
  g.add_edge(u, v);
  EXPECT_EQ(analyze(g).count(kBadRedistribution), 0);
}

// ---- PTA020: unreachable task ----

TEST(HygienePass, TaskOutsideTheMarkerEnvelopeIsReported) {
  core::TaskGraph g;
  g.add_task(core::MTask("a", 1.0e9));
  g.add_start_stop_markers();
  // Added after the markers: connected to neither start nor stop.
  g.add_task(core::MTask("stray", 1.0e9));
  const Report r = analyze(g);
  ASSERT_EQ(r.count(kUnreachableTask), 1);
  EXPECT_FALSE(r.clean());
  EXPECT_EQ(r.diagnostics.front().task_names,
            (std::vector<std::string>{"stray"}));
}

TEST(HygienePass, FullyEnvelopedGraphHasNoUnreachableTasks) {
  core::TaskGraph g;
  const core::TaskId a = g.add_task(core::MTask("a", 1.0e9));
  const core::TaskId b = g.add_task(core::MTask("b", 1.0e9));
  g.add_edge(a, b);
  g.add_start_stop_markers();
  EXPECT_EQ(analyze(g).count(kUnreachableTask), 0);
}

TEST(HygienePass, GraphWithoutMarkersSkipsReachabilityEntirely) {
  core::TaskGraph g;
  g.add_task(core::MTask("a", 1.0e9));
  g.add_task(core::MTask("b", 1.0e9));  // disconnected but no envelope
  EXPECT_EQ(analyze(g).count(kUnreachableTask), 0);
}

// ---- PTA021: dead write (warning) ----

TEST(HygienePass, OutputNoDownstreamTaskConsumesIsADeadWriteWarning) {
  core::TaskGraph g;
  const core::TaskId a = g.add_task(task_with("a", {output("x", 64)}));
  const core::TaskId b = g.add_task(task_with("b", {input("y", 64)}));
  g.add_edge(a, b);
  const Report r = analyze(g);
  ASSERT_EQ(r.count(kDeadWrite), 1);
  EXPECT_EQ(r.diagnostics.front().severity, Severity::Warning);
  EXPECT_TRUE(r.clean());  // warnings keep the report clean
}

TEST(HygienePass, ConsumedOutputIsNotADeadWrite) {
  core::TaskGraph g;
  const core::TaskId a = g.add_task(task_with("a", {output("x", 64)}));
  const core::TaskId b = g.add_task(task_with("b", {input("x", 64)}));
  g.add_edge(a, b);
  EXPECT_EQ(analyze(g).count(kDeadWrite), 0);
}

TEST(HygienePass, TerminalWritersProduceProgramOutputsNotDeadWrites) {
  core::TaskGraph g;
  g.add_task(task_with("last", {output("result", 64)}));
  EXPECT_EQ(analyze(g).count(kDeadWrite), 0);
}

// ---- PTA022: empty/missing composite body ----

TEST(HierAnalysis, CompositeWithAnEmptyBodyIsReported) {
  core::HierGraph program;
  const core::TaskId pre = program.graph.add_task(core::MTask("pre", 1.0e9));
  const core::TaskId loop = program.graph.add_task(core::MTask("loop", 1.0e9));
  program.graph.add_edge(pre, loop);
  program.sub[loop] = std::make_unique<core::HierGraph>();  // zero basic tasks
  const Report r = Analyzer().analyze(program);
  ASSERT_EQ(r.count(kEmptyComposite), 1);
  EXPECT_FALSE(r.clean());
}

TEST(HierAnalysis, CompositeWithANullBodyIsReported) {
  core::HierGraph program;
  const core::TaskId loop = program.graph.add_task(core::MTask("loop", 1.0e9));
  program.sub[loop] = nullptr;
  EXPECT_EQ(Analyzer().analyze(program).count(kEmptyComposite), 1);
}

TEST(HierAnalysis, CompositeWithABasicBodyTaskIsCleanAndRecursedInto) {
  core::HierGraph program;
  const core::TaskId loop = program.graph.add_task(core::MTask("loop", 1.0e9));
  auto body = std::make_unique<core::HierGraph>();
  // The body carries a WAW race so the recursion itself is observable.
  body->graph.add_task(task_with("i1", {output("k", 64)}));
  body->graph.add_task(task_with("i2", {output("k", 64)}));
  program.sub[loop] = std::move(body);
  const Report r = Analyzer().analyze(program);
  EXPECT_EQ(r.count(kEmptyComposite), 0);
  ASSERT_EQ(r.count(kRaceWaw), 1);
  // The nested finding is scoped to the composite's name.
  EXPECT_EQ(r.diagnostics.front().scope, "'loop'");
}

// ---- PTA023: degenerate chain (warning) ----

TEST(HygienePass, ChainMixingVeryDifferentMaxCoresIsWarned) {
  core::TaskGraph g;
  core::MTask narrow("narrow", 1.0e9);
  narrow.set_max_cores(1);
  core::MTask wide("wide", 1.0e9);
  wide.set_max_cores(8);  // >= chain_clamp_factor (4) * 1
  const core::TaskId a = g.add_task(std::move(narrow));
  const core::TaskId b = g.add_task(std::move(wide));
  g.add_edge(a, b);
  const Report r = analyze(g);
  ASSERT_EQ(r.count(kDegenerateChain), 1);
  EXPECT_EQ(r.diagnostics.front().severity, Severity::Warning);
  EXPECT_EQ(r.diagnostics.front().tasks,
            (std::vector<core::TaskId>{a, b}));
}

TEST(HygienePass, ChainWithSimilarMaxCoresIsNotWarned) {
  core::TaskGraph g;
  core::MTask a_task("a", 1.0e9);
  a_task.set_max_cores(2);
  core::MTask b_task("b", 1.0e9);
  b_task.set_max_cores(4);  // < 4 * 2
  const core::TaskId a = g.add_task(std::move(a_task));
  const core::TaskId b = g.add_task(std::move(b_task));
  g.add_edge(a, b);
  EXPECT_EQ(analyze(g).count(kDegenerateChain), 0);
}

// ---- PTA030: broken task profile ----

TEST(ProfilePass, NegativeWorkIsReported) {
  core::TaskGraph g;
  g.add_task(core::MTask("bad", -1.0));
  const Report r = analyze(g);
  ASSERT_GE(r.count(kBadTaskProfile), 1);
  EXPECT_FALSE(r.clean());
}

TEST(ProfilePass, NonPositiveMaxCoresIsReported) {
  core::TaskGraph g;
  core::MTask t("bad", 1.0e9);
  t.set_max_cores(0);
  g.add_task(std::move(t));
  EXPECT_GE(analyze(g).count(kBadTaskProfile), 1);
}

TEST(ProfilePass, NegativeCollectiveRepeatIsReported) {
  core::TaskGraph g;
  core::MTask t("bad", 1.0e9);
  t.add_comm(core::CollectiveOp{core::CollectiveKind::Allgather,
                                core::CommScope::Group, 1024, -1});
  g.add_task(std::move(t));
  EXPECT_GE(analyze(g).count(kBadTaskProfile), 1);
}

TEST(ProfilePass, WellFormedProfileIsClean) {
  core::TaskGraph g;
  core::MTask t("ok", 1.0e9);
  t.add_comm(core::CollectiveOp{core::CollectiveKind::Allgather,
                                core::CommScope::Group, 1024, 2});
  g.add_task(std::move(t));
  const Report r = analyze(g);
  EXPECT_EQ(r.count(kBadTaskProfile), 0);
  EXPECT_TRUE(r.clean());
}

// ---- PTA031: broken cost model ----

TEST(CostPass, NegativeTaskTimeIsReported) {
  core::TaskGraph g;
  g.add_task(core::MTask("t", 1.0e9));
  arch::MachineSpec spec = arch::chic();
  spec.core_efficiency = -1.0;  // sustained flop rate < 0 => T(M, q) < 0
  const Report r =
      Analyzer().analyze(g, arch::Machine(spec), spec.total_cores());
  ASSERT_GE(r.count(kBadCostModel), 1);
  EXPECT_FALSE(r.clean());
}

TEST(CostPass, RealMachinePresetIsClean) {
  core::TaskGraph g;
  core::MTask t("t", 1.0e9);
  t.add_comm(core::CollectiveOp{core::CollectiveKind::Allreduce,
                                core::CommScope::Group, 4096, 1});
  g.add_task(std::move(t));
  const arch::Machine machine{arch::chic()};
  const Report r = Analyzer().analyze(g, machine, machine.total_cores());
  EXPECT_EQ(r.count(kBadCostModel), 0);
  EXPECT_TRUE(r.clean());
}

// ---- PTA032: zero-cost task (warning) ----

TEST(ProfilePass, ZeroWorkZeroCommTaskIsWarned) {
  core::TaskGraph g;
  g.add_task(core::MTask("noop", 0.0));
  const Report r = analyze(g);
  ASSERT_EQ(r.count(kZeroCostTask), 1);
  EXPECT_EQ(r.diagnostics.front().severity, Severity::Warning);
  EXPECT_TRUE(r.clean());
}

TEST(ProfilePass, MarkersAndWorkingTasksAreNotZeroCostWarnings) {
  core::TaskGraph g;
  g.add_task(core::MTask("real", 1.0e9));
  g.add_start_stop_markers();  // markers have zero work by design
  EXPECT_EQ(analyze(g).count(kZeroCostTask), 0);
}

// ---- PTA040: idle cores (warning) ----

sched::LayeredSchedule identity_schedule(const core::TaskGraph& g,
                                         int total_cores) {
  sched::LayeredSchedule s;
  s.total_cores = total_cores;
  s.contraction.contracted = g;
  s.contraction.members.resize(static_cast<std::size_t>(g.num_tasks()));
  s.contraction.representative.resize(static_cast<std::size_t>(g.num_tasks()));
  for (core::TaskId id = 0; id < g.num_tasks(); ++id) {
    s.contraction.members[static_cast<std::size_t>(id)] = {id};
    s.contraction.representative[static_cast<std::size_t>(id)] = id;
  }
  return s;
}

TEST(ScheduleLint, LayerGroupWithoutTasksIsAnIdleCoreWarning) {
  core::TaskGraph g;
  g.add_task(core::MTask("a", 1.0e9));
  g.add_task(core::MTask("b", 1.0e9));
  sched::LayeredSchedule s = identity_schedule(g, 4);
  sched::ScheduledLayer layer;
  layer.tasks = {0, 1};
  layer.group_sizes = {2, 2};
  layer.task_group = {0, 0};  // group 1 never runs anything
  s.layers.push_back(std::move(layer));
  const cost::CostModel cm{arch::Machine(arch::chic())};
  const Report r = Analyzer().lint(s, cm);
  ASSERT_EQ(r.count(kIdleCores), 1);
  EXPECT_EQ(r.diagnostics.front().severity, Severity::Warning);
}

TEST(ScheduleLint, FullyUsedLayerGroupsAreClean) {
  core::TaskGraph g;
  g.add_task(core::MTask("a", 1.0e9));
  g.add_task(core::MTask("b", 1.0e9));
  sched::LayeredSchedule s = identity_schedule(g, 4);
  sched::ScheduledLayer layer;
  layer.tasks = {0, 1};
  layer.group_sizes = {2, 2};
  layer.task_group = {0, 1};
  s.layers.push_back(std::move(layer));
  const cost::CostModel cm{arch::Machine(arch::chic())};
  EXPECT_EQ(Analyzer().lint(s, cm).count(kIdleCores), 0);
}

TEST(ScheduleLint, GanttCoresNoSlotUsesAreAnIdleCoreWarning) {
  core::TaskGraph g;
  g.add_task(core::MTask("a", 1.0e9));
  sched::GanttSchedule s;
  s.total_cores = 4;
  s.slots.resize(1);
  s.slots[0] = {{0, 1}, 0.0, 1.0};  // cores 2 and 3 never used
  s.makespan = 1.0;
  const cost::CostModel cm{arch::Machine(arch::chic())};
  const Report r = Analyzer().lint(g, s, cm);
  ASSERT_EQ(r.count(kIdleCores), 1);
  EXPECT_NE(r.diagnostics.front().message.find("2 of 4"), std::string::npos);
}

TEST(ScheduleLint, GanttUsingEveryCoreIsClean) {
  core::TaskGraph g;
  g.add_task(core::MTask("a", 1.0e9));
  sched::GanttSchedule s;
  s.total_cores = 2;
  s.slots.resize(1);
  s.slots[0] = {{0, 1}, 0.0, 1.0};
  s.makespan = 1.0;
  const cost::CostModel cm{arch::Machine(arch::chic())};
  EXPECT_EQ(Analyzer().lint(g, s, cm).count(kIdleCores), 0);
}

// ---- PTA041: re-distribution dominated (warning) ----

/// a -> b moving a 1 MiB parameter between disjoint core sets.
core::TaskGraph redistribution_graph() {
  core::TaskGraph g;
  const core::TaskId a =
      g.add_task(task_with("a", {output("x", std::size_t{1} << 20)}));
  const core::TaskId b =
      g.add_task(task_with("b", {input("x", std::size_t{1} << 20)}));
  g.add_edge(a, b);
  return g;
}

TEST(ScheduleLint, RedistributionDwarfingTheMakespanIsWarned) {
  const core::TaskGraph g = redistribution_graph();
  sched::GanttSchedule s;
  s.total_cores = 2;
  s.slots.resize(2);
  s.slots[0] = {{0}, 0.0, 1e-9};
  s.slots[1] = {{1}, 1e-9, 2e-9};
  s.makespan = 2e-9;  // moving 1 MiB takes far longer than this
  const cost::CostModel cm{arch::Machine(arch::chic())};
  const Report r = Analyzer().lint(g, s, cm);
  ASSERT_EQ(r.count(kRedistributionDominated), 1);
  EXPECT_EQ(r.diagnostics.front().severity, Severity::Warning);
}

TEST(ScheduleLint, RedistributionSmallAgainstTheMakespanIsClean) {
  const core::TaskGraph g = redistribution_graph();
  sched::GanttSchedule s;
  s.total_cores = 2;
  s.slots.resize(2);
  s.slots[0] = {{0}, 0.0, 10.0};
  s.slots[1] = {{1}, 10.0, 20.0};
  s.makespan = 20.0;  // seconds; the 1 MiB move is negligible
  const cost::CostModel cm{arch::Machine(arch::chic())};
  EXPECT_EQ(Analyzer().lint(g, s, cm).count(kRedistributionDominated), 0);
}

// ---- PTA050/051/060/061: ordering and allocation-sanity tiers ----

/// Canonical Schedule over `g` with an identity contraction; the caller
/// fills in slots, allocation, and (optionally) layers.
sched::Schedule canonical_schedule(const core::TaskGraph& g, int total_cores) {
  sched::Schedule s;
  s.strategy = "test";
  s.layered = identity_schedule(g, total_cores);
  s.gantt.total_cores = total_cores;
  s.gantt.slots.resize(static_cast<std::size_t>(g.num_tasks()));
  s.allocation.assign(static_cast<std::size_t>(g.num_tasks()), 1);
  return s;
}

TEST(OrderingPass, CoreOrderContradictingPrecedenceIsADeadlock) {
  core::TaskGraph g;
  const core::TaskId a = g.add_task(core::MTask("a", 1.0e9));
  const core::TaskId b = g.add_task(core::MTask("b", 1.0e9));
  g.add_edge(a, b);
  sched::Schedule s = canonical_schedule(g, 1);
  // Core 0 runs b before a, but the graph orders a before b: the combined
  // precedence order has the cycle a -> b -> a.
  s.gantt.slots[0] = {{0}, 1.0, 2.0};
  s.gantt.slots[1] = {{0}, 0.0, 1.0};
  s.gantt.makespan = 2.0;
  const cost::CostModel cm{arch::Machine(arch::chic())};
  const Report r = Analyzer().lint(s, cm);
  ASSERT_GE(r.count(kOrderingDeadlock), 1);
  EXPECT_FALSE(r.clean());
}

TEST(OrderingPass, CoreOrderAgreeingWithPrecedenceIsClean) {
  core::TaskGraph g;
  const core::TaskId a = g.add_task(core::MTask("a", 1.0e9));
  const core::TaskId b = g.add_task(core::MTask("b", 1.0e9));
  g.add_edge(a, b);
  sched::Schedule s = canonical_schedule(g, 1);
  s.gantt.slots[0] = {{0}, 0.0, 1.0};
  s.gantt.slots[1] = {{0}, 1.0, 2.0};
  s.gantt.makespan = 2.0;
  const cost::CostModel cm{arch::Machine(arch::chic())};
  EXPECT_EQ(Analyzer().lint(s, cm).count(kOrderingDeadlock), 0);
}

TEST(OrderingPass, RedistributionAgainstTheLayerOrderIsReported) {
  core::TaskGraph g;
  const core::TaskId a = g.add_task(task_with("a", {output("x", 64)}));
  const core::TaskId b = g.add_task(task_with("b", {input("x", 64)}));
  g.add_edge(a, b);
  sched::Schedule s = canonical_schedule(g, 1);
  // Slots respect precedence, but the layer list is reversed: 'x' would be
  // re-distributed from layer 1 back into layer 0.
  s.gantt.slots[static_cast<std::size_t>(a)] = {{0}, 0.0, 1.0};
  s.gantt.slots[static_cast<std::size_t>(b)] = {{0}, 1.0, 2.0};
  s.gantt.makespan = 2.0;
  sched::ScheduledLayer first;
  first.tasks = {b};
  first.group_sizes = {1};
  first.task_group = {0};
  sched::ScheduledLayer second;
  second.tasks = {a};
  second.group_sizes = {1};
  second.task_group = {0};
  s.layered.layers = {first, second};
  const cost::CostModel cm{arch::Machine(arch::chic())};
  const Report r = Analyzer().lint(s, cm);
  ASSERT_GE(r.count(kLayerOrderReversal), 1);
  EXPECT_EQ(r.count(kOrderingDeadlock), 0);  // the Gantt order itself is fine
}

TEST(OrderingPass, RedistributionAlongTheLayerOrderIsClean) {
  core::TaskGraph g;
  const core::TaskId a = g.add_task(task_with("a", {output("x", 64)}));
  const core::TaskId b = g.add_task(task_with("b", {input("x", 64)}));
  g.add_edge(a, b);
  sched::Schedule s = canonical_schedule(g, 1);
  s.gantt.slots[static_cast<std::size_t>(a)] = {{0}, 0.0, 1.0};
  s.gantt.slots[static_cast<std::size_t>(b)] = {{0}, 1.0, 2.0};
  s.gantt.makespan = 2.0;
  sched::ScheduledLayer first;
  first.tasks = {a};
  first.group_sizes = {1};
  first.task_group = {0};
  sched::ScheduledLayer second;
  second.tasks = {b};
  second.group_sizes = {1};
  second.task_group = {0};
  s.layered.layers = {first, second};
  const cost::CostModel cm{arch::Machine(arch::chic())};
  EXPECT_EQ(Analyzer().lint(s, cm).count(kLayerOrderReversal), 0);
}

TEST(AllocationSanity, MakespanFarPastTheLowerBoundIsWarned) {
  core::TaskGraph g;
  g.add_task(core::MTask("a", 1.0e9));
  sched::Schedule s = canonical_schedule(g, 2);
  // 1e9 seconds for a task a single CHiC core finishes in well under a
  // second: orders of magnitude past alpha x the symbolic lower bound.
  s.gantt.slots[0] = {{0}, 0.0, 1.0e9};
  s.gantt.makespan = 1.0e9;
  const cost::CostModel cm{arch::Machine(arch::chic())};
  const Report r = Analyzer().lint(s, cm);
  ASSERT_GE(r.count(kMakespanBlowup), 1);
  for (const Diagnostic& d : r.diagnostics) {
    if (d.code == kMakespanBlowup) EXPECT_EQ(d.severity, Severity::Warning);
  }
}

TEST(AllocationSanity, GroupPastTheMonotonicSpeedupRegionIsWarned) {
  core::TaskGraph g;
  core::MTask t("chatty", 1.0);  // one flop of work...
  t.add_comm(core::CollectiveOp{core::CollectiveKind::Allgather,
                                core::CommScope::Group,
                                std::size_t{1} << 20, 8});  // ...8 MiB moved
  g.add_task(std::move(t));
  sched::Schedule s = canonical_schedule(g, 2);
  // Two cores spend longer on the collective than one core would on the
  // whole task: the second core slows the task down.
  s.gantt.slots[0] = {{0, 1}, 0.0, 1.0};
  s.gantt.makespan = 1.0;
  s.allocation = {2};
  const cost::CostModel cm{arch::Machine(arch::chic())};
  const Report r = Analyzer().lint(s, cm);
  ASSERT_GE(r.count(kNonMonotonicAllocation), 1);
  for (const Diagnostic& d : r.diagnostics) {
    if (d.code == kNonMonotonicAllocation) {
      EXPECT_EQ(d.severity, Severity::Warning);
    }
  }
}

TEST(AllocationSanity, RealLayerScheduleHasNoOrderingOrAllocationFindings) {
  core::TaskGraph g;
  const core::TaskId a = g.add_task(core::MTask("a", 2.0e9));
  const core::TaskId b = g.add_task(core::MTask("b", 1.0e9));
  const core::TaskId c = g.add_task(core::MTask("c", 1.5e9));
  const core::TaskId d = g.add_task(core::MTask("d", 2.5e9));
  g.add_edge(a, b);
  g.add_edge(a, c);
  g.add_edge(b, d);
  g.add_edge(c, d);
  g.add_start_stop_markers();
  const cost::CostModel cm{arch::Machine(arch::chic())};
  const sched::Schedule s =
      sched::SchedulerRegistry::instance().make("layer", cm)->run(g, 4);
  const Report r = Analyzer().lint(s, cm);
  EXPECT_EQ(r.count(kOrderingDeadlock), 0);
  EXPECT_EQ(r.count(kLayerOrderReversal), 0);
  EXPECT_EQ(r.count(kMakespanBlowup), 0);
  EXPECT_EQ(r.count(kNonMonotonicAllocation), 0);
}

TEST(AllocationSanity, DisabledTiersEmitNothing) {
  core::TaskGraph g;
  const core::TaskId a = g.add_task(core::MTask("a", 1.0e9));
  const core::TaskId b = g.add_task(core::MTask("b", 1.0e9));
  g.add_edge(a, b);
  sched::Schedule s = canonical_schedule(g, 1);
  s.gantt.slots[0] = {{0}, 1.0, 2.0};   // deadlock shape...
  s.gantt.slots[1] = {{0}, 0.0, 1.0};
  s.gantt.makespan = 1.0e9;             // ...and a makespan blowup
  AnalyzerOptions options;
  options.ordering_checks = false;
  options.allocation_sanity = false;
  const cost::CostModel cm{arch::Machine(arch::chic())};
  const Report r = Analyzer(options).lint(s, cm);
  EXPECT_EQ(r.count(kOrderingDeadlock), 0);
  EXPECT_EQ(r.count(kMakespanBlowup), 0);
  EXPECT_EQ(r.count(kNonMonotonicAllocation), 0);
}

// ---- report plumbing and rendering ----

TEST(Diagnostics, EveryCodeHasADescription) {
  for (const std::string_view code : all_codes()) {
    EXPECT_FALSE(describe(code).empty()) << code;
  }
  EXPECT_TRUE(describe("PTA999").empty());
}

TEST(Diagnostics, RenderTextShowsSeverityCodeAndCounts) {
  core::TaskGraph g;
  g.add_task(task_with("w", {output("x", 64)}));
  g.add_task(task_with("r", {input("x", 64)}));
  const Report r = analyze(g);
  const std::string text = render_text(r);
  EXPECT_NE(text.find("error[PTA002]"), std::string::npos) << text;
  EXPECT_NE(text.find("1 error(s)"), std::string::npos) << text;
}

TEST(Diagnostics, RenderJsonCarriesCountsTasksAndVars) {
  core::TaskGraph g;
  g.add_task(task_with("w", {output("x", 64)}));
  g.add_task(task_with("r", {input("x", 64)}));
  const std::string json = render_json(analyze(g));
  EXPECT_NE(json.find("\"errors\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"code\":\"PTA002\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"w\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"x\""), std::string::npos) << json;
}

TEST(Diagnostics, MergePrefixesNestedScopes) {
  Report inner;
  Diagnostic d;
  d.code = std::string(kRaceWaw);
  d.scope = "'body'";
  inner.diagnostics.push_back(d);
  Report outer;
  outer.merge(std::move(inner), "'loop'");
  ASSERT_EQ(outer.diagnostics.size(), 1u);
  EXPECT_EQ(outer.diagnostics.front().scope, "'loop'/'body'");
}

TEST(AnalyzerOptionsTest, DisabledPassesEmitNothing) {
  core::TaskGraph g;
  g.add_task(task_with("w1", {output("x", 64)}));
  g.add_task(task_with("w2", {output("x", 64)}));
  AnalyzerOptions options;
  options.race_detection = false;
  options.size_consistency = false;
  options.graph_hygiene = false;
  options.cost_sanity = false;
  EXPECT_TRUE(Analyzer(options).analyze(g).diagnostics.empty());
}

}  // namespace
}  // namespace ptask::analysis
