// Tests for the scheduling service (ptask::serve): wire protocol framing
// and parsing, canonical schedule serialization, the single-flight schedule
// cache, the server's protocol error paths (one positive and one negative
// test per PTS00x code, mirroring the analyzer's PTA0xx convention), the
// differential oracle (served bytes == direct Pipeline run) across all five
// fuzz graph families, concurrent cache correctness, and a bounded
// fault-injecting soak.  The TSan CI preset re-runs this binary, so the
// concurrency tests double as race detectors.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "ptask/analysis/certifier.hpp"
#include "ptask/cost/cost_model.hpp"
#include "ptask/fuzz/generator.hpp"
#include "ptask/fuzz/rng.hpp"
#include "ptask/obs/json.hpp"
#include "ptask/obs/metrics.hpp"
#include "ptask/sched/registry.hpp"
#include "ptask/serve/client.hpp"
#include "ptask/serve/protocol.hpp"
#include "ptask/serve/schedule_cache.hpp"
#include "ptask/serve/server.hpp"

namespace ptask::serve {
namespace {

/// A small deterministic request (two-task chain on a CHiC slice).
ScheduleRequest tiny_request(const std::string& scheduler = "layer") {
  ScheduleRequest request;
  request.scheduler = scheduler;
  request.total_cores = 8;
  arch::MachineSpec spec = arch::chic();
  spec.num_nodes = 2;
  request.machine = spec;
  core::MTask a("a", 1.0e8);
  a.add_comm(core::CollectiveOp{core::CollectiveKind::Allgather,
                                core::CommScope::Group, 4096, 2});
  const core::TaskId ia = request.graph.add_task(a);
  const core::TaskId ib = request.graph.add_task(core::MTask("b", 2.0e8));
  request.graph.add_edge(ia, ib);
  return request;
}

/// Request built from a fuzz instance.
ScheduleRequest fuzz_request(const fuzz::Instance& instance,
                             const std::string& scheduler) {
  ScheduleRequest request;
  request.scheduler = scheduler;
  request.total_cores = instance.total_cores;
  request.machine = instance.machine;
  request.graph = instance.graph;
  return request;
}

std::string direct_schedule_bytes(const ScheduleRequest& request) {
  const cost::CostModel cost{arch::Machine(request.machine)};
  const auto scheduler =
      sched::SchedulerRegistry::instance().make(request.scheduler, cost);
  return serialize_schedule(scheduler->run(request.graph, request.total_cores));
}

std::uint64_t error_counter(std::string_view code) {
  return obs::metrics().counter("serve.error." + std::string(code)).value();
}

/// Server + connected client fixture (ephemeral port, default options).
class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerOptions options;
    options.num_workers = 8;
    options.max_request_bytes = 1u << 20;
    server_ = std::make_unique<Server>(options);
    server_->start();
    client_.connect("127.0.0.1", server_->port());
  }

  void TearDown() override {
    client_.close();
    server_->stop();
  }

  std::unique_ptr<Server> server_;
  Client client_;
};

// ---- framing ----

TEST(ServeProtocol, FrameHeaderRoundTrips) {
  const std::string frame = encode_frame("hello");
  ASSERT_EQ(frame.size(), 9u);
  unsigned char header[4];
  std::copy(frame.begin(), frame.begin() + 4, header);
  EXPECT_EQ(decode_frame_length(header), 5u);
  EXPECT_EQ(frame.substr(4), "hello");

  const std::string big(300, 'x');
  const std::string big_frame = encode_frame(big);
  std::copy(big_frame.begin(), big_frame.begin() + 4, header);
  EXPECT_EQ(decode_frame_length(header), 300u);
}

// ---- request serialization / parsing ----

TEST(ServeProtocol, RequestRoundTripsCanonically) {
  for (const std::uint64_t seed : {1ull, 7ull, 23ull, 99ull}) {
    const fuzz::Instance instance = fuzz::random_instance(seed);
    const ScheduleRequest request = fuzz_request(instance, "layer");
    const std::string payload = serialize_request(request);
    const ScheduleRequest parsed = parse_request(payload);
    // Canonicality: re-serializing the parsed request reproduces the exact
    // bytes, so the cache key is stable across client and server.
    EXPECT_EQ(serialize_request(parsed), payload) << instance.name;
    EXPECT_EQ(parsed.graph.num_tasks(), request.graph.num_tasks());
    EXPECT_EQ(parsed.graph.num_edges(), request.graph.num_edges());
    EXPECT_EQ(parsed.total_cores, request.total_cores);
  }
}

TEST(ServeProtocol, RequestPreservesTaskContentExactly) {
  const ScheduleRequest request = tiny_request();
  const ScheduleRequest parsed = parse_request(serialize_request(request));
  const core::MTask& a = parsed.graph.task(0);
  EXPECT_EQ(a.name(), "a");
  EXPECT_EQ(a.work_flop(), 1.0e8);  // bit-exact, not approximate
  ASSERT_EQ(a.comms().size(), 1u);
  EXPECT_EQ(a.comms()[0].kind, core::CollectiveKind::Allgather);
  EXPECT_EQ(a.comms()[0].scope, core::CommScope::Group);
  EXPECT_EQ(a.comms()[0].data_bytes, 4096u);
  EXPECT_EQ(a.comms()[0].repeat, 2);
}

TEST(ServeProtocol, NearCollisionRequestsGetDistinctKeys) {
  // Same shape, one weight differs by one part in 2^52: the canonical keys
  // must differ (the schedule cache can never alias them).
  ScheduleRequest a = tiny_request();
  ScheduleRequest b = tiny_request();
  const double work = b.graph.task(0).work_flop();
  b.graph.task(0).set_work_flop(
      std::nextafter(work, 2.0 * work));
  EXPECT_NE(canonical_key(a), canonical_key(b));
}

TEST(ServeProtocol, ScheduleSerializationIsDeterministic) {
  const ScheduleRequest request = tiny_request("portfolio");
  const std::string first = direct_schedule_bytes(request);
  const std::string second = direct_schedule_bytes(request);
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
  // And it parses as JSON with the documented members.
  const obs::json::Value document = obs::json::parse(first);
  ASSERT_TRUE(document.is_object());
  EXPECT_NE(document.find("strategy"), nullptr);
  EXPECT_NE(document.find("makespan"), nullptr);
  EXPECT_NE(document.find("slots"), nullptr);
  EXPECT_NE(document.find("contraction"), nullptr);
}

// ---- schedule cache ----

TEST(ScheduleCache, SingleFlightComputesOnce) {
  ScheduleCache cache;
  std::atomic<int> computations{0};
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<ScheduleCache::Entry> results(kThreads);
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      results[static_cast<std::size_t>(t)] = cache.get_or_compute("key", [&] {
        computations.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        return std::string("value");
      });
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(computations.load(), 1);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), static_cast<std::uint64_t>(kThreads - 1));
  for (const ScheduleCache::Entry& entry : results) {
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(*entry, "value");
  }
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.value_bytes(), 5u);
}

TEST(ScheduleCache, FailedComputationIsRetriable) {
  ScheduleCache cache;
  EXPECT_THROW(cache.get_or_compute(
                   "key", []() -> std::string { throw std::runtime_error("x"); }),
               std::runtime_error);
  // The failure was not cached: the next call computes again and succeeds.
  const ScheduleCache::Entry entry =
      cache.get_or_compute("key", [] { return std::string("ok"); });
  EXPECT_EQ(*entry, "ok");
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(ScheduleCache, DistinctKeysDistinctEntries) {
  ScheduleCache cache;
  const ScheduleCache::Entry a =
      cache.get_or_compute("a", [] { return std::string("A"); });
  const ScheduleCache::Entry b =
      cache.get_or_compute("b", [] { return std::string("B"); });
  EXPECT_NE(*a, *b);
  EXPECT_EQ(cache.entries(), 2u);
  cache.clear();
  EXPECT_EQ(cache.entries(), 0u);
  // Counters survive clear().
  EXPECT_EQ(cache.misses(), 2u);
}

// ---- protocol error paths (one positive + one negative per code) ----

TEST_F(ServeTest, Pts001MalformedJson) {
  const std::uint64_t before = error_counter(kErrMalformedJson);
  const std::string response = client_.call("{this is not json");
  EXPECT_FALSE(response_ok(response));
  EXPECT_EQ(response_error_code(response), kErrMalformedJson);
  EXPECT_EQ(error_counter(kErrMalformedJson), before + 1);
}

TEST_F(ServeTest, Pts001NegativeValidJsonIsNotMalformed) {
  const std::uint64_t before = error_counter(kErrMalformedJson);
  const std::string response = client_.call(serialize_request(tiny_request()));
  EXPECT_TRUE(response_ok(response));
  EXPECT_EQ(error_counter(kErrMalformedJson), before);
}

TEST_F(ServeTest, Pts002BadRequestMissingFields) {
  const std::uint64_t before = error_counter(kErrBadRequest);
  const std::string response =
      client_.call("{\"scheduler\":\"layer\",\"total_cores\":4}");
  EXPECT_EQ(response_error_code(response), kErrBadRequest);
  EXPECT_EQ(error_counter(kErrBadRequest), before + 1);
}

TEST_F(ServeTest, Pts002BadRequestEdgeOutOfRange) {
  ScheduleRequest request = tiny_request();
  std::string payload = serialize_request(request);
  // Rewrite the edge list to point outside the task array.
  const std::string needle = "\"edges\":[[0,1]]";
  const std::size_t at = payload.find(needle);
  ASSERT_NE(at, std::string::npos);
  payload.replace(at, needle.size(), "\"edges\":[[0,9]]");
  EXPECT_EQ(response_error_code(client_.call(payload)), kErrBadRequest);
}

TEST_F(ServeTest, Pts002BadRequestCycle) {
  ScheduleRequest request = tiny_request();
  std::string payload = serialize_request(request);
  const std::string needle = "\"edges\":[[0,1]]";
  const std::size_t at = payload.find(needle);
  ASSERT_NE(at, std::string::npos);
  payload.replace(at, needle.size(), "\"edges\":[[0,1],[1,0]]");
  EXPECT_EQ(response_error_code(client_.call(payload)), kErrBadRequest);
}

TEST_F(ServeTest, Pts002NegativeCompleteRequestPasses) {
  const std::uint64_t before = error_counter(kErrBadRequest);
  EXPECT_TRUE(response_ok(client_.call(serialize_request(tiny_request()))));
  EXPECT_EQ(error_counter(kErrBadRequest), before);
}

TEST_F(ServeTest, Pts003UnknownScheduler) {
  const std::uint64_t before = error_counter(kErrUnknownScheduler);
  ScheduleRequest request = tiny_request();
  request.scheduler = "no-such-strategy";
  const std::string response = client_.call(serialize_request(request));
  EXPECT_EQ(response_error_code(response), kErrUnknownScheduler);
  EXPECT_EQ(error_counter(kErrUnknownScheduler), before + 1);
}

TEST_F(ServeTest, Pts003NegativeEveryRegisteredSchedulerIsAccepted) {
  for (const std::string& name : sched::SchedulerRegistry::instance().names()) {
    const std::string response =
        client_.call(serialize_request(tiny_request(name)));
    EXPECT_TRUE(response_ok(response)) << name << ": " << response;
  }
}

TEST_F(ServeTest, Pts004EmptyGraph) {
  const std::uint64_t before = error_counter(kErrEmptyGraph);
  ScheduleRequest request = tiny_request();
  request.graph = core::TaskGraph();
  const std::string response = client_.call(serialize_request(request));
  EXPECT_EQ(response_error_code(response), kErrEmptyGraph);
  EXPECT_EQ(error_counter(kErrEmptyGraph), before + 1);
}

TEST_F(ServeTest, Pts004NegativeSingleTaskGraphPasses) {
  ScheduleRequest request;
  request.scheduler = "layer";
  request.total_cores = 4;
  arch::MachineSpec spec = arch::chic();
  spec.num_nodes = 1;
  request.machine = spec;
  request.graph.add_task(core::MTask("only", 1.0e7));
  EXPECT_TRUE(response_ok(client_.call(serialize_request(request))));
}

TEST_F(ServeTest, Pts005OversizedRequest) {
  const std::uint64_t before = error_counter(kErrTooLarge);
  // Header announcing 2 MiB on a server limited to 1 MiB: structured error,
  // then the server hangs up (no resynchronization inside the stream).
  const unsigned char header[4] = {0x00, 0x20, 0x00, 0x00};
  client_.send_raw(std::string_view(
      reinterpret_cast<const char*>(header), sizeof(header)));
  const std::optional<std::string> response = client_.read_response();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response_error_code(*response), kErrTooLarge);
  EXPECT_EQ(error_counter(kErrTooLarge), before + 1);
  EXPECT_FALSE(client_.read_response().has_value());  // connection closed
}

TEST_F(ServeTest, Pts005NegativeFrameWithinLimitPasses) {
  const std::uint64_t before = error_counter(kErrTooLarge);
  EXPECT_TRUE(response_ok(client_.call(serialize_request(tiny_request()))));
  EXPECT_EQ(error_counter(kErrTooLarge), before);
}

TEST_F(ServeTest, TruncatedFrameNeverCrashesTheServer) {
  // Announce 64 bytes, deliver 10, hang up.  The server must treat it as a
  // disconnect and keep serving other connections.
  const unsigned char header[4] = {0x00, 0x00, 0x00, 0x40};
  client_.send_raw(std::string_view(
      reinterpret_cast<const char*>(header), sizeof(header)));
  client_.send_raw("0123456789");
  client_.close();
  Client fresh;
  fresh.connect("127.0.0.1", server_->port());
  EXPECT_TRUE(response_ok(fresh.call(serialize_request(tiny_request()))));
}

// ---- schedule cache: bounded LRU ----

TEST(ScheduleCache, LruCapEvictsTheLeastRecentlyUsedReadyEntry) {
  ScheduleCache cache(2);
  EXPECT_EQ(cache.max_entries(), 2u);
  int computed_a = 0;
  int computed_b = 0;
  int computed_c = 0;
  const auto get = [&](const std::string& key, int& counter) {
    return cache.get_or_compute(key, [&] {
      ++counter;
      return "v-" + key;
    });
  };
  get("a", computed_a);
  get("b", computed_b);
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.evictions(), 0u);
  get("a", computed_a);  // touch: b becomes least recently used
  get("c", computed_c);  // over the cap: b is evicted
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  get("a", computed_a);
  EXPECT_EQ(computed_a, 1);  // a was touched, so it survived
  get("b", computed_b);
  EXPECT_EQ(computed_b, 2);  // b was evicted and had to be recomputed
}

TEST(ScheduleCache, UnboundedByDefaultNeverEvicts) {
  ScheduleCache cache;
  EXPECT_EQ(cache.max_entries(), 0u);
  for (int i = 0; i < 50; ++i) {
    cache.get_or_compute("key" + std::to_string(i),
                         [] { return std::string("v"); });
  }
  EXPECT_EQ(cache.entries(), 50u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(ScheduleCache, EvictionPreservesSingleFlight) {
  // An in-flight computation must never be evicted (only completed entries
  // sit on the LRU list), so concurrent requesters still coalesce onto one
  // computation while the capped cache churns around them.
  ScheduleCache cache(1);
  std::atomic<int> computations{0};
  std::atomic<bool> started{false};
  constexpr int kThreads = 6;
  std::vector<ScheduleCache::Entry> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  threads.emplace_back([&] {
    results[0] = cache.get_or_compute("slow", [&] {
      computations.fetch_add(1);
      started.store(true);
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      return std::string("slow-value");
    });
  });
  while (!started.load()) std::this_thread::yield();
  for (int i = 0; i < 4; ++i) {  // churn far past the cap of 1
    cache.get_or_compute("churn" + std::to_string(i),
                         [] { return std::string("x"); });
  }
  for (int t = 1; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      results[static_cast<std::size_t>(t)] =
          cache.get_or_compute("slow", [&] {
            computations.fetch_add(1);
            return std::string("slow-value");
          });
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(computations.load(), 1);
  for (const ScheduleCache::Entry& entry : results) {
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(*entry, "slow-value");
  }
  EXPECT_GE(cache.evictions(), 3u);
}

// ---- stats / ping ----

TEST_F(ServeTest, PingAndStatsRespond) {
  EXPECT_TRUE(response_ok(client_.call("{\"type\":\"ping\"}")));
  const std::string stats = client_.stats();
  EXPECT_TRUE(response_ok(stats));
  const obs::json::Value document = obs::json::parse(stats);
  const obs::json::Value* body = document.find("stats");
  ASSERT_NE(body, nullptr);
  EXPECT_NE(body->find("requests"), nullptr);
  EXPECT_NE(body->find("cache"), nullptr);
  EXPECT_NE(body->find("latency_us"), nullptr);
  EXPECT_NE(body->find("in_flight"), nullptr);
}

// ---- cache semantics through the wire ----

TEST_F(ServeTest, RepeatedRequestIsServedFromCacheByteIdentically) {
  const std::string payload = serialize_request(tiny_request("portfolio"));
  const std::string first = client_.call(payload);
  ASSERT_TRUE(response_ok(first));
  EXPECT_EQ(server_->cache().misses(), 1u);
  const std::string second = client_.call(payload);
  EXPECT_EQ(first, second);  // cached response is bit-identical
  EXPECT_EQ(server_->cache().hits(), 1u);
}

TEST_F(ServeTest, ConcurrentIdenticalRequestsAtMostOneMiss) {
  // N threads submit the identical graph concurrently: every response must
  // carry byte-identical schedule bytes and the schedule is computed at
  // most once (single-flight cache).  The TSan CI preset re-runs this.
  const std::string payload = serialize_request(tiny_request("portfolio"));
  constexpr int kThreads = 8;
  std::vector<std::string> responses(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Client client;
      client.connect("127.0.0.1", server_->port());
      responses[static_cast<std::size_t>(t)] = client.call(payload);
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (const std::string& response : responses) {
    ASSERT_TRUE(response_ok(response));
    EXPECT_EQ(response, responses[0]);
  }
  EXPECT_EQ(server_->cache().misses(), 1u);
  EXPECT_EQ(server_->cache().hits(), static_cast<std::uint64_t>(kThreads - 1));
}

// ---- opt-in certification (PTS006, certificate_hash) ----

/// Registers a deliberately infeasible scheduler ("broken-cert-test"): every
/// task lands on core 0 over [0, 1), so precedence and occupancy are both
/// violated and the independent certifier must reject the result.
void register_broken_scheduler() {
  class BrokenScheduler final : public sched::Scheduler {
   public:
    std::string_view name() const override { return "broken-cert-test"; }
    sched::Schedule run(const core::TaskGraph& g,
                        int total_cores) const override {
      sched::Schedule s;
      s.strategy = std::string(name());
      s.layered.total_cores = total_cores;
      s.layered.contraction.contracted = g;
      for (core::TaskId id = 0; id < g.num_tasks(); ++id) {
        s.layered.contraction.members.push_back({id});
        s.layered.contraction.representative.push_back(id);
      }
      s.gantt.total_cores = total_cores;
      s.gantt.slots.assign(static_cast<std::size_t>(g.num_tasks()),
                           sched::TaskSlot{{0}, 0.0, 1.0});
      s.gantt.makespan = 1.0;
      s.allocation.assign(static_cast<std::size_t>(g.num_tasks()), 1);
      return s;
    }
  };
  sched::SchedulerRegistry::instance().register_strategy(
      "broken-cert-test",
      [](const cost::CostModel&) { return std::make_unique<BrokenScheduler>(); });
}

TEST(ServeProtocol, CertifyFlagRoundTripsAndKeysTheCacheSeparately) {
  ScheduleRequest plain = tiny_request();
  ScheduleRequest certified = tiny_request();
  certified.certify = true;
  // "certify":true is emitted only when set, so legacy payloads stay stable.
  const std::string plain_payload = serialize_request(plain);
  const std::string certified_payload = serialize_request(certified);
  EXPECT_EQ(plain_payload.find("certify"), std::string::npos);
  EXPECT_NE(certified_payload.find("\"certify\":true"), std::string::npos);
  EXPECT_TRUE(parse_request(certified_payload).certify);
  EXPECT_FALSE(parse_request(plain_payload).certify);
  EXPECT_EQ(serialize_request(parse_request(certified_payload)),
            certified_payload);
  // Distinct canonical keys: a certified cache hit was certified at miss
  // time, never aliased with an unaudited entry.
  EXPECT_NE(canonical_key(plain), canonical_key(certified));
  EXPECT_FALSE(describe_error(kErrCertification).empty());
}

TEST_F(ServeTest, CertifiedResponseCarriesAMatchingCertificateHash) {
  ScheduleRequest request = tiny_request("layer");
  request.certify = true;
  const std::string response = client_.call(serialize_request(request));
  ASSERT_TRUE(response_ok(response)) << response;
  const std::string schedule_json = response_schedule_json(response);
  // The envelope slice stays byte-exact despite the certificate suffix.
  ScheduleRequest uncertified = tiny_request("layer");
  EXPECT_EQ(schedule_json, direct_schedule_bytes(uncertified));
  const std::string hash = response_certificate_hash(response);
  ASSERT_EQ(hash.size(), 18u) << hash;
  EXPECT_EQ(hash, analysis::hash_hex(analysis::fnv1a64(schedule_json)));
  // An uncertified response has no hash member.
  const std::string plain = client_.call(serialize_request(uncertified));
  EXPECT_TRUE(response_certificate_hash(plain).empty());
}

TEST_F(ServeTest, Pts006CertificationFailureIsNeverCached) {
  register_broken_scheduler();
  ScheduleRequest request = tiny_request("broken-cert-test");
  request.certify = true;
  const std::uint64_t before = error_counter(kErrCertification);
  const std::string response = client_.call(serialize_request(request));
  EXPECT_FALSE(response_ok(response));
  EXPECT_EQ(response_error_code(response), kErrCertification);
  EXPECT_EQ(error_counter(kErrCertification), before + 1);
  // The rejection is not cached: an identical retry re-certifies (and is
  // rejected again) instead of serving a poisoned entry.
  EXPECT_EQ(response_error_code(client_.call(serialize_request(request))),
            kErrCertification);
  EXPECT_EQ(error_counter(kErrCertification), before + 2);
}

TEST_F(ServeTest, Pts006NegativeCertificationIsStrictlyOptIn) {
  register_broken_scheduler();
  const std::uint64_t before = error_counter(kErrCertification);
  // Without "certify":true even an infeasible schedule is served (the
  // pre-certifier contract), so certification cannot break legacy clients.
  const std::string response =
      client_.call(serialize_request(tiny_request("broken-cert-test")));
  EXPECT_TRUE(response_ok(response)) << response;
  EXPECT_EQ(error_counter(kErrCertification), before);
}

TEST_F(ServeTest, Pts006NegativeEveryRealSchedulerCertifies) {
  const std::uint64_t before = error_counter(kErrCertification);
  for (const std::string& name : sched::SchedulerRegistry::instance().names()) {
    if (name == "broken-cert-test") continue;
    ScheduleRequest request = tiny_request(name);
    request.certify = true;
    const std::string response = client_.call(serialize_request(request));
    EXPECT_TRUE(response_ok(response)) << name << ": " << response;
    EXPECT_FALSE(response_certificate_hash(response).empty()) << name;
  }
  EXPECT_EQ(error_counter(kErrCertification), before);
}

TEST(ServeOptions, CacheMaxEntriesBoundsTheServerCache) {
  ServerOptions options;
  options.cache_max_entries = 1;
  Server server(options);
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());
  const std::string first = serialize_request(tiny_request("layer"));
  const std::string second = serialize_request(tiny_request("cpa"));
  ASSERT_TRUE(response_ok(client.call(first)));
  ASSERT_TRUE(response_ok(client.call(second)));  // evicts the first entry
  EXPECT_EQ(server.cache().entries(), 1u);
  EXPECT_EQ(server.cache().evictions(), 1u);
  const std::uint64_t misses_before = server.cache().misses();
  ASSERT_TRUE(response_ok(client.call(first)));  // recomputed, not a hit
  EXPECT_EQ(server.cache().misses(), misses_before + 1);
  // The stats response reports the bound and the eviction count.
  const obs::json::Value document = obs::json::parse(client.stats());
  const obs::json::Value* cache = document.find("stats")->find("cache");
  ASSERT_NE(cache, nullptr);
  ASSERT_NE(cache->find("evictions"), nullptr);
  EXPECT_EQ(cache->find("evictions")->number, 2.0);
  ASSERT_NE(cache->find("max_entries"), nullptr);
  EXPECT_EQ(cache->find("max_entries")->number, 1.0);
  server.stop();
}

// ---- differential oracle across the five fuzz families ----

TEST_F(ServeTest, ServedSchedulesMatchDirectPipelineRunsAcrossFamilies) {
  // For every graph family, find a couple of instances and require the
  // served schedule bytes to equal a direct in-process run of the same
  // strategy -- the end-to-end bit-identity contract of the service.
  std::map<fuzz::GraphFamily, int> covered;
  std::uint64_t seed = 1;
  const int per_family = 2;
  while (covered.size() < 5u ||
         std::any_of(covered.begin(), covered.end(),
                     [&](const auto& kv) { return kv.second < per_family; })) {
    const fuzz::Instance instance = fuzz::random_instance(seed++);
    if (covered[instance.family] >= per_family) continue;
    if (instance.graph.num_tasks() > 300) continue;  // keep the test quick
    ++covered[instance.family];
    for (const std::string scheduler : {"layer", "portfolio"}) {
      const ScheduleRequest request = fuzz_request(instance, scheduler);
      const std::string response = client_.call(serialize_request(request));
      ASSERT_TRUE(response_ok(response))
          << instance.name << " via " << scheduler << ": " << response;
      EXPECT_EQ(response_schedule_json(response),
                direct_schedule_bytes(request))
          << instance.name << " via " << scheduler;
    }
  }
}

// ---- graceful shutdown ----

TEST(ServeShutdown, StopDrainsAndJoinsWithOpenConnections) {
  Server server;
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());
  // A served request, then the connection stays open while we stop.
  ASSERT_TRUE(response_ok(client.call(serialize_request(tiny_request()))));
  server.stop();  // must not hang on the idle open connection
  EXPECT_FALSE(server.running());
  // And the socket is really gone: a new connect must fail.
  Client again;
  EXPECT_THROW(again.connect("127.0.0.1", server.port()), std::runtime_error);
}

TEST(ServeShutdown, StartStopStartWorks) {
  Server server;
  server.start();
  const int first_port = server.port();
  server.stop();
  server.start();
  EXPECT_GT(server.port(), 0);
  Client client;
  client.connect("127.0.0.1", server.port());
  EXPECT_TRUE(response_ok(client.call("{\"type\":\"ping\"}")));
  server.stop();
  (void)first_port;
}

// ---- bounded soak with protocol fault injection ----

TEST(ServeSoak, FaultInjectedSoakNeverCrashesOrServesStaleBytes) {
  // A scaled-down in-process version of the loadgen soak (the 10k-request
  // run lives in the serve_loadgen_smoke CTest entry and the CI smoke job):
  // a mixed stream of valid repeat-heavy traffic and protocol garbage, with
  // every valid response checked for byte-stability against the first
  // response for that instance -- a stale or aliased cache entry fails here.
  ServerOptions options;
  options.max_request_bytes = 1u << 20;
  options.num_workers = 4;
  Server server(options);
  server.start();

  // Unique pool: 12 instances across families, repeat-heavy traffic.
  std::vector<std::string> payloads;
  std::uint64_t seed = 101;
  while (payloads.size() < 12u) {
    const fuzz::Instance instance = fuzz::random_instance(seed++);
    if (instance.graph.num_tasks() > 150) continue;
    payloads.push_back(
        serialize_request(fuzz_request(instance, "layer")));
  }

  const char* env_requests = std::getenv("PTASK_SERVE_SOAK_REQUESTS");
  const int total_requests =
      env_requests != nullptr ? std::atoi(env_requests) : 600;
  constexpr int kThreads = 4;
  std::vector<std::string> first_response(payloads.size());
  std::mutex first_mutex;
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      fuzz::Rng rng(0xabcdef * static_cast<std::uint64_t>(t + 1));
      Client client;
      client.connect("127.0.0.1", server.port());
      for (int i = 0; i < total_requests / kThreads; ++i) {
        try {
          if (rng.chance(0.1)) {
            // Garbage traffic: malformed JSON or a truncated frame.
            if (rng.chance(0.5)) {
              const std::string response = client.call("{broken");
              if (response_error_code(response) != kErrMalformedJson) {
                failures.fetch_add(1);
              }
            } else {
              const unsigned char header[4] = {0x00, 0x00, 0x01, 0x00};
              client.send_raw(std::string_view(
                  reinterpret_cast<const char*>(header), sizeof(header)));
              client.send_raw("short");
              client.connect("127.0.0.1", server.port());
            }
            continue;
          }
          const std::size_t index = static_cast<std::size_t>(
              rng.uniform(0, static_cast<int>(payloads.size()) - 1));
          const std::string response = client.call(payloads[index]);
          if (!response_ok(response)) {
            failures.fetch_add(1);
            continue;
          }
          const std::lock_guard<std::mutex> lock(first_mutex);
          std::string& expected = first_response[index];
          if (expected.empty()) {
            expected = response;
          } else if (expected != response) {
            failures.fetch_add(1);  // stale or aliased cache entry
          }
        } catch (const std::exception&) {
          // Connection hiccup: reconnect and continue the soak.
          try {
            client.connect("127.0.0.1", server.port());
          } catch (const std::exception&) {
            failures.fetch_add(1);
            return;
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0);
  // Repeat-heavy mix over 12 unique instances: the cache hit rate must
  // clear the service-contract floor by a wide margin.
  const std::uint64_t hits = server.cache().hits();
  const std::uint64_t misses = server.cache().misses();
  ASSERT_GT(hits + misses, 0u);
  EXPECT_GE(static_cast<double>(hits) / static_cast<double>(hits + misses),
            0.5);
  EXPECT_LE(misses, payloads.size());
  server.stop();
}

}  // namespace
}  // namespace ptask::serve
