// Tests for the scheduling service (ptask::serve): wire protocol framing
// and parsing, canonical schedule serialization, the single-flight schedule
// cache, the server's protocol error paths (one positive and one negative
// test per PTS00x code, mirroring the analyzer's PTA0xx convention), the
// differential oracle (served bytes == direct Pipeline run) across all five
// fuzz graph families, concurrent cache correctness, and a bounded
// fault-injecting soak.  The TSan CI preset re-runs this binary, so the
// concurrency tests double as race detectors.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "ptask/analysis/certifier.hpp"
#include "ptask/cost/cost_model.hpp"
#include "ptask/fuzz/generator.hpp"
#include "ptask/fuzz/rng.hpp"
#include "ptask/obs/json.hpp"
#include "ptask/obs/metrics.hpp"
#include "ptask/obs/prometheus.hpp"
#include "ptask/obs/trace.hpp"
#include "ptask/sched/batch.hpp"
#include "ptask/sched/incremental.hpp"
#include "ptask/sched/registry.hpp"
#include "ptask/serve/client.hpp"
#include "ptask/serve/protocol.hpp"
#include "ptask/serve/schedule_cache.hpp"
#include "ptask/serve/server.hpp"

namespace ptask::serve {
namespace {

/// A small deterministic request (two-task chain on a CHiC slice).
ScheduleRequest tiny_request(const std::string& scheduler = "layer") {
  ScheduleRequest request;
  request.scheduler = scheduler;
  request.total_cores = 8;
  arch::MachineSpec spec = arch::chic();
  spec.num_nodes = 2;
  request.machine = spec;
  core::MTask a("a", 1.0e8);
  a.add_comm(core::CollectiveOp{core::CollectiveKind::Allgather,
                                core::CommScope::Group, 4096, 2});
  const core::TaskId ia = request.graph.add_task(a);
  const core::TaskId ib = request.graph.add_task(core::MTask("b", 2.0e8));
  request.graph.add_edge(ia, ib);
  return request;
}

/// Request built from a fuzz instance.
ScheduleRequest fuzz_request(const fuzz::Instance& instance,
                             const std::string& scheduler) {
  ScheduleRequest request;
  request.scheduler = scheduler;
  request.total_cores = instance.total_cores;
  request.machine = instance.machine;
  request.graph = instance.graph;
  return request;
}

std::string direct_schedule_bytes(const ScheduleRequest& request) {
  const cost::CostModel cost{arch::Machine(request.machine)};
  const auto scheduler =
      sched::SchedulerRegistry::instance().make(request.scheduler, cost);
  return serialize_schedule(scheduler->run(request.graph, request.total_cores));
}

std::uint64_t error_counter(std::string_view code) {
  return obs::metrics().counter("serve.error." + std::string(code)).value();
}

/// Server + connected client fixture (ephemeral port, default options).
class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerOptions options;
    options.num_workers = 8;
    options.max_request_bytes = 1u << 20;
    server_ = std::make_unique<Server>(options);
    server_->start();
    client_.connect("127.0.0.1", server_->port());
  }

  void TearDown() override {
    client_.close();
    server_->stop();
  }

  std::unique_ptr<Server> server_;
  Client client_;
};

// ---- framing ----

TEST(ServeProtocol, FrameHeaderRoundTrips) {
  const std::string frame = encode_frame("hello");
  ASSERT_EQ(frame.size(), 9u);
  unsigned char header[4];
  std::copy(frame.begin(), frame.begin() + 4, header);
  EXPECT_EQ(decode_frame_length(header), 5u);
  EXPECT_EQ(frame.substr(4), "hello");

  const std::string big(300, 'x');
  const std::string big_frame = encode_frame(big);
  std::copy(big_frame.begin(), big_frame.begin() + 4, header);
  EXPECT_EQ(decode_frame_length(header), 300u);
}

// ---- request serialization / parsing ----

TEST(ServeProtocol, RequestRoundTripsCanonically) {
  for (const std::uint64_t seed : {1ull, 7ull, 23ull, 99ull}) {
    const fuzz::Instance instance = fuzz::random_instance(seed);
    const ScheduleRequest request = fuzz_request(instance, "layer");
    const std::string payload = serialize_request(request);
    const ScheduleRequest parsed = parse_request(payload);
    // Canonicality: re-serializing the parsed request reproduces the exact
    // bytes, so the cache key is stable across client and server.
    EXPECT_EQ(serialize_request(parsed), payload) << instance.name;
    EXPECT_EQ(parsed.graph.num_tasks(), request.graph.num_tasks());
    EXPECT_EQ(parsed.graph.num_edges(), request.graph.num_edges());
    EXPECT_EQ(parsed.total_cores, request.total_cores);
  }
}

TEST(ServeProtocol, RequestPreservesTaskContentExactly) {
  const ScheduleRequest request = tiny_request();
  const ScheduleRequest parsed = parse_request(serialize_request(request));
  const core::MTask& a = parsed.graph.task(0);
  EXPECT_EQ(a.name(), "a");
  EXPECT_EQ(a.work_flop(), 1.0e8);  // bit-exact, not approximate
  ASSERT_EQ(a.comms().size(), 1u);
  EXPECT_EQ(a.comms()[0].kind, core::CollectiveKind::Allgather);
  EXPECT_EQ(a.comms()[0].scope, core::CommScope::Group);
  EXPECT_EQ(a.comms()[0].data_bytes, 4096u);
  EXPECT_EQ(a.comms()[0].repeat, 2);
}

TEST(ServeProtocol, NearCollisionRequestsGetDistinctKeys) {
  // Same shape, one weight differs by one part in 2^52: the canonical keys
  // must differ (the schedule cache can never alias them).
  ScheduleRequest a = tiny_request();
  ScheduleRequest b = tiny_request();
  const double work = b.graph.task(0).work_flop();
  b.graph.task(0).set_work_flop(
      std::nextafter(work, 2.0 * work));
  EXPECT_NE(canonical_key(a), canonical_key(b));
}

TEST(ServeProtocol, ScheduleSerializationIsDeterministic) {
  const ScheduleRequest request = tiny_request("portfolio");
  const std::string first = direct_schedule_bytes(request);
  const std::string second = direct_schedule_bytes(request);
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
  // And it parses as JSON with the documented members.
  const obs::json::Value document = obs::json::parse(first);
  ASSERT_TRUE(document.is_object());
  EXPECT_NE(document.find("strategy"), nullptr);
  EXPECT_NE(document.find("makespan"), nullptr);
  EXPECT_NE(document.find("slots"), nullptr);
  EXPECT_NE(document.find("contraction"), nullptr);
}

// ---- schedule cache ----

TEST(ScheduleCache, SingleFlightComputesOnce) {
  ScheduleCache cache;
  std::atomic<int> computations{0};
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<ScheduleCache::Entry> results(kThreads);
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      results[static_cast<std::size_t>(t)] = cache.get_or_compute("key", [&] {
        computations.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        return std::string("value");
      });
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(computations.load(), 1);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), static_cast<std::uint64_t>(kThreads - 1));
  for (const ScheduleCache::Entry& entry : results) {
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(*entry, "value");
  }
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.value_bytes(), 5u);
}

TEST(ScheduleCache, FailedComputationIsRetriable) {
  ScheduleCache cache;
  EXPECT_THROW(cache.get_or_compute(
                   "key", []() -> std::string { throw std::runtime_error("x"); }),
               std::runtime_error);
  // The failure was not cached: the next call computes again and succeeds.
  const ScheduleCache::Entry entry =
      cache.get_or_compute("key", [] { return std::string("ok"); });
  EXPECT_EQ(*entry, "ok");
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(ScheduleCache, DistinctKeysDistinctEntries) {
  ScheduleCache cache;
  const ScheduleCache::Entry a =
      cache.get_or_compute("a", [] { return std::string("A"); });
  const ScheduleCache::Entry b =
      cache.get_or_compute("b", [] { return std::string("B"); });
  EXPECT_NE(*a, *b);
  EXPECT_EQ(cache.entries(), 2u);
  cache.clear();
  EXPECT_EQ(cache.entries(), 0u);
  // Counters survive clear().
  EXPECT_EQ(cache.misses(), 2u);
}

// ---- protocol error paths (one positive + one negative per code) ----

TEST_F(ServeTest, Pts001MalformedJson) {
  const std::uint64_t before = error_counter(kErrMalformedJson);
  const std::string response = client_.call("{this is not json");
  EXPECT_FALSE(response_ok(response));
  EXPECT_EQ(response_error_code(response), kErrMalformedJson);
  EXPECT_EQ(error_counter(kErrMalformedJson), before + 1);
}

TEST_F(ServeTest, Pts001NegativeValidJsonIsNotMalformed) {
  const std::uint64_t before = error_counter(kErrMalformedJson);
  const std::string response = client_.call(serialize_request(tiny_request()));
  EXPECT_TRUE(response_ok(response));
  EXPECT_EQ(error_counter(kErrMalformedJson), before);
}

TEST_F(ServeTest, Pts002BadRequestMissingFields) {
  const std::uint64_t before = error_counter(kErrBadRequest);
  const std::string response =
      client_.call("{\"scheduler\":\"layer\",\"total_cores\":4}");
  EXPECT_EQ(response_error_code(response), kErrBadRequest);
  EXPECT_EQ(error_counter(kErrBadRequest), before + 1);
}

TEST_F(ServeTest, Pts002BadRequestEdgeOutOfRange) {
  ScheduleRequest request = tiny_request();
  std::string payload = serialize_request(request);
  // Rewrite the edge list to point outside the task array.
  const std::string needle = "\"edges\":[[0,1]]";
  const std::size_t at = payload.find(needle);
  ASSERT_NE(at, std::string::npos);
  payload.replace(at, needle.size(), "\"edges\":[[0,9]]");
  EXPECT_EQ(response_error_code(client_.call(payload)), kErrBadRequest);
}

TEST_F(ServeTest, Pts002BadRequestCycle) {
  ScheduleRequest request = tiny_request();
  std::string payload = serialize_request(request);
  const std::string needle = "\"edges\":[[0,1]]";
  const std::size_t at = payload.find(needle);
  ASSERT_NE(at, std::string::npos);
  payload.replace(at, needle.size(), "\"edges\":[[0,1],[1,0]]");
  EXPECT_EQ(response_error_code(client_.call(payload)), kErrBadRequest);
}

TEST_F(ServeTest, Pts002NegativeCompleteRequestPasses) {
  const std::uint64_t before = error_counter(kErrBadRequest);
  EXPECT_TRUE(response_ok(client_.call(serialize_request(tiny_request()))));
  EXPECT_EQ(error_counter(kErrBadRequest), before);
}

TEST_F(ServeTest, Pts003UnknownScheduler) {
  const std::uint64_t before = error_counter(kErrUnknownScheduler);
  ScheduleRequest request = tiny_request();
  request.scheduler = "no-such-strategy";
  const std::string response = client_.call(serialize_request(request));
  EXPECT_EQ(response_error_code(response), kErrUnknownScheduler);
  EXPECT_EQ(error_counter(kErrUnknownScheduler), before + 1);
}

TEST_F(ServeTest, Pts003NegativeEveryRegisteredSchedulerIsAccepted) {
  for (const std::string& name : sched::SchedulerRegistry::instance().names()) {
    const std::string response =
        client_.call(serialize_request(tiny_request(name)));
    EXPECT_TRUE(response_ok(response)) << name << ": " << response;
  }
}

TEST_F(ServeTest, Pts004EmptyGraph) {
  const std::uint64_t before = error_counter(kErrEmptyGraph);
  ScheduleRequest request = tiny_request();
  request.graph = core::TaskGraph();
  const std::string response = client_.call(serialize_request(request));
  EXPECT_EQ(response_error_code(response), kErrEmptyGraph);
  EXPECT_EQ(error_counter(kErrEmptyGraph), before + 1);
}

TEST_F(ServeTest, Pts004NegativeSingleTaskGraphPasses) {
  ScheduleRequest request;
  request.scheduler = "layer";
  request.total_cores = 4;
  arch::MachineSpec spec = arch::chic();
  spec.num_nodes = 1;
  request.machine = spec;
  request.graph.add_task(core::MTask("only", 1.0e7));
  EXPECT_TRUE(response_ok(client_.call(serialize_request(request))));
}

TEST_F(ServeTest, Pts005OversizedRequest) {
  const std::uint64_t before = error_counter(kErrTooLarge);
  // Header announcing 2 MiB on a server limited to 1 MiB: structured error,
  // then the server hangs up (no resynchronization inside the stream).
  const unsigned char header[4] = {0x00, 0x20, 0x00, 0x00};
  client_.send_raw(std::string_view(
      reinterpret_cast<const char*>(header), sizeof(header)));
  const std::optional<std::string> response = client_.read_response();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response_error_code(*response), kErrTooLarge);
  EXPECT_EQ(error_counter(kErrTooLarge), before + 1);
  EXPECT_FALSE(client_.read_response().has_value());  // connection closed
}

TEST_F(ServeTest, Pts005NegativeFrameWithinLimitPasses) {
  const std::uint64_t before = error_counter(kErrTooLarge);
  EXPECT_TRUE(response_ok(client_.call(serialize_request(tiny_request()))));
  EXPECT_EQ(error_counter(kErrTooLarge), before);
}

TEST_F(ServeTest, TruncatedFrameNeverCrashesTheServer) {
  // Announce 64 bytes, deliver 10, hang up.  The server must treat it as a
  // disconnect and keep serving other connections.
  const unsigned char header[4] = {0x00, 0x00, 0x00, 0x40};
  client_.send_raw(std::string_view(
      reinterpret_cast<const char*>(header), sizeof(header)));
  client_.send_raw("0123456789");
  client_.close();
  Client fresh;
  fresh.connect("127.0.0.1", server_->port());
  EXPECT_TRUE(response_ok(fresh.call(serialize_request(tiny_request()))));
}

// ---- schedule cache: bounded LRU ----

TEST(ScheduleCache, LruCapEvictsTheLeastRecentlyUsedReadyEntry) {
  ScheduleCache cache(2);
  EXPECT_EQ(cache.max_entries(), 2u);
  int computed_a = 0;
  int computed_b = 0;
  int computed_c = 0;
  const auto get = [&](const std::string& key, int& counter) {
    return cache.get_or_compute(key, [&] {
      ++counter;
      return "v-" + key;
    });
  };
  get("a", computed_a);
  get("b", computed_b);
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.evictions(), 0u);
  get("a", computed_a);  // touch: b becomes least recently used
  get("c", computed_c);  // over the cap: b is evicted
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  get("a", computed_a);
  EXPECT_EQ(computed_a, 1);  // a was touched, so it survived
  get("b", computed_b);
  EXPECT_EQ(computed_b, 2);  // b was evicted and had to be recomputed
}

TEST(ScheduleCache, UnboundedByDefaultNeverEvicts) {
  ScheduleCache cache;
  EXPECT_EQ(cache.max_entries(), 0u);
  for (int i = 0; i < 50; ++i) {
    cache.get_or_compute("key" + std::to_string(i),
                         [] { return std::string("v"); });
  }
  EXPECT_EQ(cache.entries(), 50u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(ScheduleCache, EvictionPreservesSingleFlight) {
  // An in-flight computation must never be evicted (only completed entries
  // sit on the LRU list), so concurrent requesters still coalesce onto one
  // computation while the capped cache churns around them.
  ScheduleCache cache(1);
  std::atomic<int> computations{0};
  std::atomic<bool> started{false};
  constexpr int kThreads = 6;
  std::vector<ScheduleCache::Entry> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  threads.emplace_back([&] {
    results[0] = cache.get_or_compute("slow", [&] {
      computations.fetch_add(1);
      started.store(true);
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      return std::string("slow-value");
    });
  });
  while (!started.load()) std::this_thread::yield();
  for (int i = 0; i < 4; ++i) {  // churn far past the cap of 1
    cache.get_or_compute("churn" + std::to_string(i),
                         [] { return std::string("x"); });
  }
  for (int t = 1; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      results[static_cast<std::size_t>(t)] =
          cache.get_or_compute("slow", [&] {
            computations.fetch_add(1);
            return std::string("slow-value");
          });
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(computations.load(), 1);
  for (const ScheduleCache::Entry& entry : results) {
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(*entry, "slow-value");
  }
  EXPECT_GE(cache.evictions(), 3u);
}

// ---- stats / ping ----

TEST_F(ServeTest, PingAndStatsRespond) {
  EXPECT_TRUE(response_ok(client_.call("{\"type\":\"ping\"}")));
  const std::string stats = client_.stats();
  EXPECT_TRUE(response_ok(stats));
  const obs::json::Value document = obs::json::parse(stats);
  const obs::json::Value* body = document.find("stats");
  ASSERT_NE(body, nullptr);
  EXPECT_NE(body->find("requests"), nullptr);
  EXPECT_NE(body->find("cache"), nullptr);
  EXPECT_NE(body->find("latency_us"), nullptr);
  EXPECT_NE(body->find("in_flight"), nullptr);
}

// ---- cache semantics through the wire ----

TEST_F(ServeTest, RepeatedRequestIsServedFromCacheByteIdentically) {
  const std::string payload = serialize_request(tiny_request("portfolio"));
  const std::string first = client_.call(payload);
  ASSERT_TRUE(response_ok(first));
  EXPECT_EQ(server_->cache().misses(), 1u);
  const std::string second = client_.call(payload);
  // The cached schedule bytes are bit-identical; only the per-request
  // correlation ID (minted fresh per response) may differ.
  EXPECT_EQ(response_schedule_json(first), response_schedule_json(second));
  EXPECT_FALSE(response_schedule_json(first).empty());
  EXPECT_NE(response_request_id(first), response_request_id(second));
  EXPECT_EQ(server_->cache().hits(), 1u);
}

TEST_F(ServeTest, ConcurrentIdenticalRequestsAtMostOneMiss) {
  // N threads submit the identical graph concurrently: every response must
  // carry byte-identical schedule bytes and the schedule is computed at
  // most once (single-flight cache).  The TSan CI preset re-runs this.
  const std::string payload = serialize_request(tiny_request("portfolio"));
  constexpr int kThreads = 8;
  std::vector<std::string> responses(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Client client;
      client.connect("127.0.0.1", server_->port());
      responses[static_cast<std::size_t>(t)] = client.call(payload);
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (const std::string& response : responses) {
    ASSERT_TRUE(response_ok(response));
    EXPECT_EQ(response_schedule_json(response),
              response_schedule_json(responses[0]));
  }
  EXPECT_FALSE(response_schedule_json(responses[0]).empty());
  EXPECT_EQ(server_->cache().misses(), 1u);
  EXPECT_EQ(server_->cache().hits(), static_cast<std::uint64_t>(kThreads - 1));
}

// ---- opt-in certification (PTS006, certificate_hash) ----

/// Registers a deliberately infeasible scheduler ("broken-cert-test"): every
/// task lands on core 0 over [0, 1), so precedence and occupancy are both
/// violated and the independent certifier must reject the result.
void register_broken_scheduler() {
  class BrokenScheduler final : public sched::Scheduler {
   public:
    std::string_view name() const override { return "broken-cert-test"; }
    sched::Schedule run(const core::TaskGraph& g,
                        int total_cores) const override {
      sched::Schedule s;
      s.strategy = std::string(name());
      s.layered.total_cores = total_cores;
      s.layered.contraction.contracted = g;
      for (core::TaskId id = 0; id < g.num_tasks(); ++id) {
        s.layered.contraction.members.push_back({id});
        s.layered.contraction.representative.push_back(id);
      }
      s.gantt.total_cores = total_cores;
      s.gantt.slots.assign(static_cast<std::size_t>(g.num_tasks()),
                           sched::TaskSlot{{0}, 0.0, 1.0});
      s.gantt.makespan = 1.0;
      s.allocation.assign(static_cast<std::size_t>(g.num_tasks()), 1);
      return s;
    }
  };
  sched::SchedulerRegistry::instance().register_strategy(
      "broken-cert-test",
      [](const cost::CostModel&) { return std::make_unique<BrokenScheduler>(); });
}

TEST(ServeProtocol, CertifyFlagRoundTripsAndKeysTheCacheSeparately) {
  ScheduleRequest plain = tiny_request();
  ScheduleRequest certified = tiny_request();
  certified.certify = true;
  // "certify":true is emitted only when set, so legacy payloads stay stable.
  const std::string plain_payload = serialize_request(plain);
  const std::string certified_payload = serialize_request(certified);
  EXPECT_EQ(plain_payload.find("certify"), std::string::npos);
  EXPECT_NE(certified_payload.find("\"certify\":true"), std::string::npos);
  EXPECT_TRUE(parse_request(certified_payload).certify);
  EXPECT_FALSE(parse_request(plain_payload).certify);
  EXPECT_EQ(serialize_request(parse_request(certified_payload)),
            certified_payload);
  // Distinct canonical keys: a certified cache hit was certified at miss
  // time, never aliased with an unaudited entry.
  EXPECT_NE(canonical_key(plain), canonical_key(certified));
  EXPECT_FALSE(describe_error(kErrCertification).empty());
}

TEST_F(ServeTest, CertifiedResponseCarriesAMatchingCertificateHash) {
  ScheduleRequest request = tiny_request("layer");
  request.certify = true;
  const std::string response = client_.call(serialize_request(request));
  ASSERT_TRUE(response_ok(response)) << response;
  const std::string schedule_json = response_schedule_json(response);
  // The envelope slice stays byte-exact despite the certificate suffix.
  ScheduleRequest uncertified = tiny_request("layer");
  EXPECT_EQ(schedule_json, direct_schedule_bytes(uncertified));
  const std::string hash = response_certificate_hash(response);
  ASSERT_EQ(hash.size(), 18u) << hash;
  EXPECT_EQ(hash, analysis::hash_hex(analysis::fnv1a64(schedule_json)));
  // An uncertified response has no hash member.
  const std::string plain = client_.call(serialize_request(uncertified));
  EXPECT_TRUE(response_certificate_hash(plain).empty());
}

TEST_F(ServeTest, Pts006CertificationFailureIsNeverCached) {
  register_broken_scheduler();
  ScheduleRequest request = tiny_request("broken-cert-test");
  request.certify = true;
  const std::uint64_t before = error_counter(kErrCertification);
  const std::string response = client_.call(serialize_request(request));
  EXPECT_FALSE(response_ok(response));
  EXPECT_EQ(response_error_code(response), kErrCertification);
  EXPECT_EQ(error_counter(kErrCertification), before + 1);
  // The rejection is not cached: an identical retry re-certifies (and is
  // rejected again) instead of serving a poisoned entry.
  EXPECT_EQ(response_error_code(client_.call(serialize_request(request))),
            kErrCertification);
  EXPECT_EQ(error_counter(kErrCertification), before + 2);
}

TEST_F(ServeTest, Pts006NegativeCertificationIsStrictlyOptIn) {
  register_broken_scheduler();
  const std::uint64_t before = error_counter(kErrCertification);
  // Without "certify":true even an infeasible schedule is served (the
  // pre-certifier contract), so certification cannot break legacy clients.
  const std::string response =
      client_.call(serialize_request(tiny_request("broken-cert-test")));
  EXPECT_TRUE(response_ok(response)) << response;
  EXPECT_EQ(error_counter(kErrCertification), before);
}

TEST_F(ServeTest, Pts006NegativeEveryRealSchedulerCertifies) {
  const std::uint64_t before = error_counter(kErrCertification);
  for (const std::string& name : sched::SchedulerRegistry::instance().names()) {
    if (name == "broken-cert-test") continue;
    ScheduleRequest request = tiny_request(name);
    request.certify = true;
    const std::string response = client_.call(serialize_request(request));
    EXPECT_TRUE(response_ok(response)) << name << ": " << response;
    EXPECT_FALSE(response_certificate_hash(response).empty()) << name;
  }
  EXPECT_EQ(error_counter(kErrCertification), before);
}

// ---- request correlation (request IDs) ----

TEST_F(ServeTest, ClientRequestIdIsEchoedVerbatimOnSuccess) {
  ScheduleRequest request = tiny_request();
  request.request_id = "cli-ok-1";
  const std::string response = client_.call(serialize_request(request));
  ASSERT_TRUE(response_ok(response)) << response;
  EXPECT_EQ(response_request_id(response), "cli-ok-1");
}

TEST(ServeProtocol, AnnotationsAreExcludedFromTheCanonicalKey) {
  ScheduleRequest plain = tiny_request();
  ScheduleRequest annotated = tiny_request();
  annotated.request_id = "cli-key";
  annotated.family = "layered";
  // Same cache identity, different wire bytes: the annotations travel but
  // never alias or split cache entries.
  EXPECT_EQ(canonical_key(plain), canonical_key(annotated));
  EXPECT_NE(serialize_request(plain), serialize_request(annotated));
  // And they round-trip through parse_request.
  const ScheduleRequest parsed = parse_request(serialize_request(annotated));
  EXPECT_EQ(parsed.request_id, "cli-key");
  EXPECT_EQ(parsed.family, "layered");
  EXPECT_EQ(serialize_request(parsed), serialize_request(annotated));
}

TEST_F(ServeTest, RequestIdNeverSplitsTheCacheAndResponsesMatchModuloId) {
  ScheduleRequest a = tiny_request("portfolio");
  a.request_id = "cli-a";
  ScheduleRequest b = tiny_request("portfolio");
  b.request_id = "cli-b";
  const std::string ra = client_.call(serialize_request(a));
  const std::string rb = client_.call(serialize_request(b));
  ASSERT_TRUE(response_ok(ra));
  ASSERT_TRUE(response_ok(rb));
  // One miss, one hit: the distinct IDs did not split the cache key.
  EXPECT_EQ(server_->cache().misses(), 1u);
  EXPECT_EQ(server_->cache().hits(), 1u);
  EXPECT_EQ(response_request_id(ra), "cli-a");
  EXPECT_EQ(response_request_id(rb), "cli-b");
  // The responses are byte-identical modulo the ID member.
  std::string rb_as_a = rb;
  const std::string needle = "\"request_id\":\"cli-b\"";
  const std::size_t at = rb_as_a.find(needle);
  ASSERT_NE(at, std::string::npos);
  rb_as_a.replace(at, needle.size(), "\"request_id\":\"cli-a\"");
  EXPECT_EQ(ra, rb_as_a);
}

TEST_F(ServeTest, ClientRequestIdIsEchoedOnEveryErrorPath) {
  // PTS001: the payload never parses, but best-effort extraction still
  // recovers the ID for correlation.
  std::string response =
      client_.call("{\"request_id\":\"cli-e1\", this is not json");
  EXPECT_EQ(response_error_code(response), kErrMalformedJson);
  EXPECT_EQ(response_request_id(response), "cli-e1");

  // PTS002: valid JSON, incomplete request.
  response = client_.call(
      "{\"request_id\":\"cli-e2\",\"scheduler\":\"layer\",\"total_cores\":4}");
  EXPECT_EQ(response_error_code(response), kErrBadRequest);
  EXPECT_EQ(response_request_id(response), "cli-e2");

  // PTS003: unknown scheduler.
  ScheduleRequest unknown = tiny_request("no-such-strategy");
  unknown.request_id = "cli-e3";
  response = client_.call(serialize_request(unknown));
  EXPECT_EQ(response_error_code(response), kErrUnknownScheduler);
  EXPECT_EQ(response_request_id(response), "cli-e3");

  // PTS004: empty graph.
  ScheduleRequest empty = tiny_request();
  empty.graph = core::TaskGraph();
  empty.request_id = "cli-e4";
  response = client_.call(serialize_request(empty));
  EXPECT_EQ(response_error_code(response), kErrEmptyGraph);
  EXPECT_EQ(response_request_id(response), "cli-e4");

  // PTS006: certification failure.
  register_broken_scheduler();
  ScheduleRequest broken = tiny_request("broken-cert-test");
  broken.certify = true;
  broken.request_id = "cli-e6";
  response = client_.call(serialize_request(broken));
  EXPECT_EQ(response_error_code(response), kErrCertification);
  EXPECT_EQ(response_request_id(response), "cli-e6");
}

TEST_F(ServeTest, Pts005ResponseCarriesAMintedRequestId) {
  // The oversized frame's payload is never read, so the client ID cannot be
  // echoed -- the documented exception; the error still carries a minted ID.
  const unsigned char header[4] = {0x00, 0x20, 0x00, 0x00};
  client_.send_raw(std::string_view(
      reinterpret_cast<const char*>(header), sizeof(header)));
  const std::optional<std::string> response = client_.read_response();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response_error_code(*response), kErrTooLarge);
  const std::string id = response_request_id(*response);
  EXPECT_EQ(id.rfind("s-", 0), 0u) << "not a minted ID: " << id;
}

TEST_F(ServeTest, MintedRequestIdsAreUniqueAcrossAConcurrentBurst) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 16;
  const std::string payload = serialize_request(tiny_request());
  std::vector<std::vector<std::string>> ids(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Client client;
      client.connect("127.0.0.1", server_->port());
      for (int i = 0; i < kPerThread; ++i) {
        ids[static_cast<std::size_t>(t)].push_back(
            response_request_id(client.call(payload)));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  std::set<std::string> unique;
  for (const std::vector<std::string>& thread_ids : ids) {
    for (const std::string& id : thread_ids) {
      ASSERT_FALSE(id.empty());
      EXPECT_EQ(id.rfind("s-", 0), 0u) << id;
      unique.insert(id);
    }
  }
  EXPECT_EQ(unique.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
}

// ---- stats payload round-trip (hostile metric names, histogram buckets) ----

TEST_F(ServeTest, StatsEscapesMetricNamesAndEmitsHistogramBuckets) {
  // Metric names containing JSON-hostile characters must not break the
  // stats payload.
  const std::string weird_counter = "serve.test.\"quoted\\name\"";
  const std::string weird_histogram = "serve.test.\"quoted\\histo\"";
  obs::metrics().counter(weird_counter).add();
  obs::metrics().histogram(weird_histogram).observe(7);
  ASSERT_TRUE(response_ok(client_.call(serialize_request(tiny_request()))));

  const std::string stats = client_.stats();
  const obs::json::Value document = obs::json::parse(stats);  // must not throw
  const obs::json::Value* body = document.find("stats");
  ASSERT_NE(body, nullptr);
  const obs::json::Value* counters = body->find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_NE(counters->find(weird_counter), nullptr);
  const obs::json::Value* histograms = body->find("histograms");
  ASSERT_NE(histograms, nullptr);
  const obs::json::Value* weird = histograms->find(weird_histogram);
  ASSERT_NE(weird, nullptr);
  // Histograms carry count, percentile estimates, and the log-bucket
  // boundaries as [upper_bound, count] pairs.
  ASSERT_NE(weird->find("count"), nullptr);
  EXPECT_GE(weird->find("count")->number, 1.0);
  EXPECT_NE(weird->find("p50"), nullptr);
  EXPECT_NE(weird->find("p99"), nullptr);
  const obs::json::Value* buckets = weird->find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_TRUE(buckets->is_array());
  ASSERT_FALSE(buckets->array.empty());
  // 7 lands in bucket [4, 8) whose inclusive upper bound is 7.
  EXPECT_EQ(buckets->array[0].array[0].number, 7.0);
  EXPECT_EQ(buckets->array[0].array[1].number, 1.0);
  // The headline latency summary has the same shape.
  const obs::json::Value* latency = body->find("latency_us");
  ASSERT_NE(latency, nullptr);
  EXPECT_NE(latency->find("p50"), nullptr);
  EXPECT_NE(latency->find("buckets"), nullptr);
}

// ---- metrics endpoint (Prometheus exposition) ----

TEST_F(ServeTest, MetricsEndpointServesAConsistentExposition) {
  const std::string payload = serialize_request(tiny_request("portfolio"));
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(response_ok(client_.call(payload)));
  }
  const std::string response = client_.metrics();
  ASSERT_TRUE(response_ok(response));
  EXPECT_FALSE(response_request_id(response).empty());
  const std::string exposition = response_metrics_text(response);
  ASSERT_FALSE(exposition.empty());

  const obs::PromHistogram latency = obs::parse_prometheus_histogram(
      exposition, "ptask_serve_latency_us");
  ASSERT_TRUE(latency.found);
  EXPECT_GE(latency.count, 3u);  // registry is process-global: >=, not ==
  ASSERT_FALSE(latency.buckets.empty());
  // Cumulative buckets: bounds strictly increasing, counts monotone
  // non-decreasing, terminated by +Inf == _count.
  for (std::size_t i = 1; i < latency.buckets.size(); ++i) {
    EXPECT_GT(latency.buckets[i].first, latency.buckets[i - 1].first);
    EXPECT_GE(latency.buckets[i].second, latency.buckets[i - 1].second);
  }
  EXPECT_TRUE(std::isinf(latency.buckets.back().first));
  EXPECT_EQ(latency.buckets.back().second, latency.count);

  // Phase histograms sum consistently with the request latency: every
  // latency observation passed through the parse and cache phases (both
  // also observe on error paths, hence >=).
  const obs::PromHistogram parse = obs::parse_prometheus_histogram(
      exposition, "ptask_serve_phase_parse_us");
  const obs::PromHistogram cache = obs::parse_prometheus_histogram(
      exposition, "ptask_serve_phase_cache_us");
  ASSERT_TRUE(parse.found);
  ASSERT_TRUE(cache.found);
  EXPECT_GE(parse.count, latency.count);
  EXPECT_GE(cache.count, latency.count);

  // Exposition percentiles are monotone in q (same log-bucket estimator as
  // Histogram::percentile).
  const double p50 = obs::prometheus_percentile(latency, 0.5);
  const double p99 = obs::prometheus_percentile(latency, 0.99);
  EXPECT_LE(p50, p99);
  EXPECT_GT(p99, 0.0);

  // Per-strategy breakdown exists for the strategy we used.
  EXPECT_NE(exposition.find("ptask_serve_strategy_portfolio_requests_total"),
            std::string::npos);
}

// ---- slow-request log ----

TEST(ServeSlowLog, ThresholdGatedStructuredLogCapturesSlowRequests) {
  const std::string path =
      ::testing::TempDir() + "ptask_slow_log_test.jsonl";
  std::remove(path.c_str());
  ServerOptions options;
  options.slow_threshold_us = 1;  // effectively everything is slow
  options.slow_log_path = path;
  Server server(options);
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());
  ScheduleRequest request = tiny_request();
  request.request_id = "slow-1";
  ASSERT_TRUE(response_ok(client.call(serialize_request(request))));
  server.stop();

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << path;
  std::string line;
  bool saw_slow_request = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const obs::json::Value entry = obs::json::parse(line);  // JSON lines
    ASSERT_TRUE(entry.is_object());
    ASSERT_NE(entry.find("request_id"), nullptr);
    ASSERT_NE(entry.find("total_us"), nullptr);
    ASSERT_NE(entry.find("phases"), nullptr);
    ASSERT_NE(entry.find("cache"), nullptr);
    if (entry.find("request_id")->string != "slow-1") continue;
    saw_slow_request = true;
    EXPECT_EQ(entry.find("kind")->string, "schedule");
    EXPECT_EQ(entry.find("scheduler")->string, "layer");
    EXPECT_EQ(entry.find("cache")->string, "miss");
    EXPECT_TRUE(entry.find("error")->is_null());
    EXPECT_GT(entry.find("total_us")->number, 0.0);
    const obs::json::Value* phases = entry.find("phases");
    EXPECT_NE(phases->find("parse_us"), nullptr);
    EXPECT_NE(phases->find("schedule_us"), nullptr);
  }
  EXPECT_TRUE(saw_slow_request);
  std::remove(path.c_str());
}

TEST(ServeSlowLog, RequestsUnderTheThresholdAreNotLogged) {
  const std::string path =
      ::testing::TempDir() + "ptask_slow_log_quiet_test.jsonl";
  std::remove(path.c_str());
  ServerOptions options;
  options.slow_threshold_us = 60'000'000;  // one minute: nothing qualifies
  options.slow_log_path = path;
  Server server(options);
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());
  ASSERT_TRUE(response_ok(client.call(serialize_request(tiny_request()))));
  server.stop();
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << path;  // the file exists (truncated at start)
  std::string line;
  while (std::getline(in, line)) {
    EXPECT_TRUE(line.empty()) << "unexpected slow-log entry: " << line;
  }
  std::remove(path.c_str());
}

// ---- live trace endpoint ----

TEST(ServeTraceEndpoint, LiveTraceCarriesPerRequestSpanTrees) {
  if (!obs::kTracingCompiledIn) {
    GTEST_SKIP() << "tracing compiled out (PTASK_OBS=OFF)";
  }
  obs::tracer().set_enabled(true);
  obs::tracer().take();  // drop spans accumulated by earlier tests
  Server server;
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());
  ScheduleRequest request = tiny_request();
  request.request_id = "trace-me";
  ASSERT_TRUE(response_ok(client.call(serialize_request(request))));
  const std::string response = client.trace();
  obs::tracer().set_enabled(false);
  ASSERT_TRUE(response_ok(response));
  const std::string trace_json = response_trace_json(response);
  ASSERT_FALSE(trace_json.empty());
  const obs::json::Value document = obs::json::parse(trace_json);
  EXPECT_TRUE(document.is_object());
  // The request's span tree: a root named after the request ID plus the
  // phase spans recorded on the same worker track.
  EXPECT_NE(trace_json.find("serve.request trace-me"), std::string::npos);
  EXPECT_NE(trace_json.find("serve.recv"), std::string::npos);
  EXPECT_NE(trace_json.find("serve.parse"), std::string::npos);
  EXPECT_NE(trace_json.find("serve.cache.lookup"), std::string::npos);
  EXPECT_NE(trace_json.find("serve.schedule[layer]"), std::string::npos);
  EXPECT_NE(trace_json.find("serve.serialize"), std::string::npos);
  server.stop();
}

TEST(ServeOptions, CacheMaxEntriesBoundsTheServerCache) {
  ServerOptions options;
  options.cache_max_entries = 1;
  Server server(options);
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());
  const std::string first = serialize_request(tiny_request("layer"));
  const std::string second = serialize_request(tiny_request("cpa"));
  ASSERT_TRUE(response_ok(client.call(first)));
  ASSERT_TRUE(response_ok(client.call(second)));  // evicts the first entry
  EXPECT_EQ(server.cache().entries(), 1u);
  EXPECT_EQ(server.cache().evictions(), 1u);
  const std::uint64_t misses_before = server.cache().misses();
  ASSERT_TRUE(response_ok(client.call(first)));  // recomputed, not a hit
  EXPECT_EQ(server.cache().misses(), misses_before + 1);
  // The stats response reports the bound and the eviction count.
  const obs::json::Value document = obs::json::parse(client.stats());
  const obs::json::Value* cache = document.find("stats")->find("cache");
  ASSERT_NE(cache, nullptr);
  ASSERT_NE(cache->find("evictions"), nullptr);
  EXPECT_EQ(cache->find("evictions")->number, 2.0);
  ASSERT_NE(cache->find("max_entries"), nullptr);
  EXPECT_EQ(cache->find("max_entries")->number, 1.0);
  server.stop();
}

// ---- differential oracle across the five fuzz families ----

TEST_F(ServeTest, ServedSchedulesMatchDirectPipelineRunsAcrossFamilies) {
  // For every graph family, find a couple of instances and require the
  // served schedule bytes to equal a direct in-process run of the same
  // strategy -- the end-to-end bit-identity contract of the service.
  std::map<fuzz::GraphFamily, int> covered;
  std::uint64_t seed = 1;
  const int per_family = 2;
  while (covered.size() < 5u ||
         std::any_of(covered.begin(), covered.end(),
                     [&](const auto& kv) { return kv.second < per_family; })) {
    const fuzz::Instance instance = fuzz::random_instance(seed++);
    if (covered[instance.family] >= per_family) continue;
    if (instance.graph.num_tasks() > 300) continue;  // keep the test quick
    ++covered[instance.family];
    for (const std::string scheduler : {"layer", "portfolio"}) {
      const ScheduleRequest request = fuzz_request(instance, scheduler);
      const std::string response = client_.call(serialize_request(request));
      ASSERT_TRUE(response_ok(response))
          << instance.name << " via " << scheduler << ": " << response;
      EXPECT_EQ(response_schedule_json(response),
                direct_schedule_bytes(request))
          << instance.name << " via " << scheduler;
    }
  }
}

// ---- graceful shutdown ----

TEST(ServeShutdown, StopDrainsAndJoinsWithOpenConnections) {
  Server server;
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());
  // A served request, then the connection stays open while we stop.
  ASSERT_TRUE(response_ok(client.call(serialize_request(tiny_request()))));
  server.stop();  // must not hang on the idle open connection
  EXPECT_FALSE(server.running());
  // And the socket is really gone: a new connect must fail.
  Client again;
  EXPECT_THROW(again.connect("127.0.0.1", server.port()), std::runtime_error);
}

TEST(ServeShutdown, StartStopStartWorks) {
  Server server;
  server.start();
  const int first_port = server.port();
  server.stop();
  server.start();
  EXPECT_GT(server.port(), 0);
  Client client;
  client.connect("127.0.0.1", server.port());
  EXPECT_TRUE(response_ok(client.call("{\"type\":\"ping\"}")));
  server.stop();
  (void)first_port;
}

// ---- bounded soak with protocol fault injection ----

TEST(ServeSoak, FaultInjectedSoakNeverCrashesOrServesStaleBytes) {
  // A scaled-down in-process version of the loadgen soak (the 10k-request
  // run lives in the serve_loadgen_smoke CTest entry and the CI smoke job):
  // a mixed stream of valid repeat-heavy traffic and protocol garbage, with
  // every valid response checked for byte-stability against the first
  // response for that instance -- a stale or aliased cache entry fails here.
  ServerOptions options;
  options.max_request_bytes = 1u << 20;
  options.num_workers = 4;
  Server server(options);
  server.start();

  // Unique pool: 12 instances across families, repeat-heavy traffic.
  std::vector<std::string> payloads;
  std::uint64_t seed = 101;
  while (payloads.size() < 12u) {
    const fuzz::Instance instance = fuzz::random_instance(seed++);
    if (instance.graph.num_tasks() > 150) continue;
    payloads.push_back(
        serialize_request(fuzz_request(instance, "layer")));
  }

  const char* env_requests = std::getenv("PTASK_SERVE_SOAK_REQUESTS");
  const int total_requests =
      env_requests != nullptr ? std::atoi(env_requests) : 600;
  constexpr int kThreads = 4;
  std::vector<std::string> first_response(payloads.size());
  std::mutex first_mutex;
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      fuzz::Rng rng(0xabcdef * static_cast<std::uint64_t>(t + 1));
      Client client;
      client.connect("127.0.0.1", server.port());
      for (int i = 0; i < total_requests / kThreads; ++i) {
        try {
          if (rng.chance(0.1)) {
            // Garbage traffic: malformed JSON or a truncated frame.
            if (rng.chance(0.5)) {
              const std::string response = client.call("{broken");
              if (response_error_code(response) != kErrMalformedJson) {
                failures.fetch_add(1);
              }
            } else {
              const unsigned char header[4] = {0x00, 0x00, 0x01, 0x00};
              client.send_raw(std::string_view(
                  reinterpret_cast<const char*>(header), sizeof(header)));
              client.send_raw("short");
              client.connect("127.0.0.1", server.port());
            }
            continue;
          }
          const std::size_t index = static_cast<std::size_t>(
              rng.uniform(0, static_cast<int>(payloads.size()) - 1));
          const std::string response = client.call(payloads[index]);
          if (!response_ok(response)) {
            failures.fetch_add(1);
            continue;
          }
          // Byte-stability modulo the per-response correlation ID: compare
          // the schedule bytes, not the envelope.
          const std::string schedule = response_schedule_json(response);
          const std::lock_guard<std::mutex> lock(first_mutex);
          std::string& expected = first_response[index];
          if (expected.empty()) {
            expected = schedule;
          } else if (expected != schedule) {
            failures.fetch_add(1);  // stale or aliased cache entry
          }
        } catch (const std::exception&) {
          // Connection hiccup: reconnect and continue the soak.
          try {
            client.connect("127.0.0.1", server.port());
          } catch (const std::exception&) {
            failures.fetch_add(1);
            return;
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0);
  // Repeat-heavy mix over 12 unique instances: the cache hit rate must
  // clear the service-contract floor by a wide margin.
  const std::uint64_t hits = server.cache().hits();
  const std::uint64_t misses = server.cache().misses();
  ASSERT_GT(hits + misses, 0u);
  EXPECT_GE(static_cast<double>(hits) / static_cast<double>(hits + misses),
            0.5);
  EXPECT_LE(misses, payloads.size());
  server.stop();
}

// ---- incremental sessions (submit / extend / close) ----

/// Submit request seeded from an arrival stream's initial batch.
SubmitRequest submit_from(const fuzz::ArrivalStream& stream) {
  SubmitRequest request;
  request.total_cores = stream.instance.total_cores;
  request.machine = stream.instance.machine;
  request.graph = stream.initial;
  request.release_time = stream.initial_release;
  return request;
}

/// The "session" member of a session response ("" when absent).
std::string session_id_of(std::string_view response) {
  const obs::json::Value document = obs::json::parse(response);
  if (const obs::json::Value* session = document.find("session")) {
    if (session->is_string()) return session->string;
  }
  return {};
}

TEST(ServeProtocol, SessionRequestsRoundTrip) {
  const fuzz::ArrivalStream stream = fuzz::arrival_stream(5, 3);
  SubmitRequest submit = submit_from(stream);
  submit.request_id = "req-1";
  submit.family = "layered";
  const SubmitRequest parsed = parse_submit(serialize_submit(submit));
  EXPECT_EQ(parsed.total_cores, submit.total_cores);
  EXPECT_EQ(parsed.graph.num_tasks(), submit.graph.num_tasks());
  EXPECT_EQ(parsed.graph.num_edges(), submit.graph.num_edges());
  EXPECT_EQ(parsed.release_time, submit.release_time);
  EXPECT_EQ(parsed.request_id, "req-1");
  EXPECT_EQ(parsed.family, "layered");

  ASSERT_FALSE(stream.deltas.empty());
  ExtendRequest extend;
  extend.session = "sess-x";
  extend.delta = stream.deltas.front();
  extend.request_id = "req-2";
  const ExtendRequest extend_parsed = parse_extend(serialize_extend(extend));
  EXPECT_EQ(extend_parsed.session, "sess-x");
  EXPECT_EQ(extend_parsed.request_id, "req-2");
  EXPECT_EQ(extend_parsed.delta.release_time, extend.delta.release_time);
  EXPECT_EQ(extend_parsed.delta.edges, extend.delta.edges);
  ASSERT_EQ(extend_parsed.delta.tasks.size(), extend.delta.tasks.size());
  for (std::size_t i = 0; i < extend.delta.tasks.size(); ++i) {
    const sched::ArrivingTask& sent = extend.delta.tasks[i];
    const sched::ArrivingTask& got = extend_parsed.delta.tasks[i];
    EXPECT_EQ(got.task.name(), sent.task.name());
    EXPECT_EQ(got.task.work_flop(), sent.task.work_flop());
    EXPECT_EQ(got.release_time, sent.release_time);
    EXPECT_EQ(got.priority, sent.priority);
  }

  CloseRequest close;
  close.session = "sess-x";
  close.request_id = "req-3";
  const CloseRequest close_parsed = parse_close(serialize_close(close));
  EXPECT_EQ(close_parsed.session, "sess-x");
  EXPECT_EQ(close_parsed.request_id, "req-3");
}

TEST_F(ServeTest, SessionLifecycleMatchesADirectIncrementalRun) {
  const fuzz::ArrivalStream stream = fuzz::arrival_stream(7, 4);
  const cost::CostModel cost{arch::Machine(stream.instance.machine)};
  sched::IncrementalScheduler direct(cost);
  direct.reset(stream.initial, stream.instance.total_cores,
               stream.initial_release);

  const std::string submitted =
      client_.call(serialize_submit(submit_from(stream)));
  ASSERT_TRUE(response_ok(submitted));
  const std::string session = session_id_of(submitted);
  ASSERT_FALSE(session.empty());
  EXPECT_EQ(response_schedule_json(submitted),
            serialize_schedule(direct.current()));
  // The repair stats ride along in the response envelope.
  const obs::json::Value document = obs::json::parse(submitted);
  const obs::json::Value* stats = document.find("incremental");
  ASSERT_NE(stats, nullptr);
  ASSERT_NE(stats->find("total_layers"), nullptr);
  EXPECT_EQ(stats->find("settled_prefix")->number, 0.0);

  for (const sched::GraphDelta& delta : stream.deltas) {
    ExtendRequest extend;
    extend.session = session;
    extend.delta = delta;
    const std::string response = client_.call(serialize_extend(extend));
    ASSERT_TRUE(response_ok(response));
    EXPECT_EQ(response_schedule_json(response),
              serialize_schedule(direct.extend(delta)));
  }
  // The session converged on the one-shot schedule of the whole graph.
  EXPECT_EQ(serialize_schedule(direct.current()),
            serialize_schedule(direct.run(fuzz::materialize(stream),
                                          stream.instance.total_cores)));

  EXPECT_EQ(server_->num_sessions(), 1u);
  CloseRequest close;
  close.session = session;
  const std::string closed = client_.call(serialize_close(close));
  EXPECT_TRUE(response_ok(closed));
  EXPECT_EQ(server_->num_sessions(), 0u);

  // The closed session id is gone: further traffic on it is PTS007.
  ExtendRequest stale;
  stale.session = session;
  stale.delta.release_time = 1.0e9;
  EXPECT_EQ(response_error_code(client_.call(serialize_extend(stale))),
            kErrSession);
}

TEST_F(ServeTest, Pts007UnknownSession) {
  ExtendRequest extend;
  extend.session = "sess-no-such";
  const std::string response = client_.call(serialize_extend(extend));
  EXPECT_EQ(response_error_code(response), kErrSession);

  CloseRequest close;
  close.session = "sess-no-such";
  EXPECT_EQ(response_error_code(client_.call(serialize_close(close))),
            kErrSession);
}

TEST_F(ServeTest, Pts007InvalidDeltaLeavesTheSessionUsable) {
  const fuzz::ArrivalStream stream = fuzz::arrival_stream(11, 3);
  ASSERT_FALSE(stream.deltas.empty());
  const std::string submitted =
      client_.call(serialize_submit(submit_from(stream)));
  ASSERT_TRUE(response_ok(submitted));
  const std::string session = session_id_of(submitted);

  // An edge to a task id the session has never seen: parses fine (edge
  // semantics are checked against the accumulated graph), then the repair
  // rejects it as PTS007 without touching session state.
  ExtendRequest bogus;
  bogus.session = session;
  bogus.delta.release_time = stream.deltas.front().release_time;
  bogus.delta.edges.emplace_back(0, 999999);
  EXPECT_EQ(response_error_code(client_.call(serialize_extend(bogus))),
            kErrSession);

  // The untouched session still replays the valid stream bit-identically.
  const cost::CostModel cost{arch::Machine(stream.instance.machine)};
  sched::IncrementalScheduler direct(cost);
  direct.reset(stream.initial, stream.instance.total_cores,
               stream.initial_release);
  for (const sched::GraphDelta& delta : stream.deltas) {
    ExtendRequest extend;
    extend.session = session;
    extend.delta = delta;
    const std::string response = client_.call(serialize_extend(extend));
    ASSERT_TRUE(response_ok(response));
    EXPECT_EQ(response_schedule_json(response),
              serialize_schedule(direct.extend(delta)));
  }
}

TEST(ServeSessions, Pts007WhenTheSessionCapIsReached) {
  ServerOptions options;
  options.max_sessions = 2;
  Server server(options);
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());
  const fuzz::ArrivalStream stream = fuzz::arrival_stream(3, 2);

  const std::string first = client.call(serialize_submit(submit_from(stream)));
  const std::string second =
      client.call(serialize_submit(submit_from(stream)));
  ASSERT_TRUE(response_ok(first));
  ASSERT_TRUE(response_ok(second));
  EXPECT_EQ(server.num_sessions(), 2u);

  const std::string third = client.call(serialize_submit(submit_from(stream)));
  EXPECT_EQ(response_error_code(third), kErrSession);
  EXPECT_EQ(server.num_sessions(), 2u);

  // Closing a session frees its slot.
  CloseRequest close;
  close.session = session_id_of(first);
  ASSERT_TRUE(response_ok(client.call(serialize_close(close))));
  EXPECT_TRUE(response_ok(client.call(serialize_submit(submit_from(stream)))));
  server.stop();
}

TEST_F(ServeTest, SessionTrafficNeverTouchesTheScheduleCache) {
  const std::uint64_t hits = server_->cache().hits();
  const std::uint64_t misses = server_->cache().misses();
  const fuzz::ArrivalStream stream = fuzz::arrival_stream(13, 3);

  const std::string submitted =
      client_.call(serialize_submit(submit_from(stream)));
  ASSERT_TRUE(response_ok(submitted));
  const std::string session = session_id_of(submitted);
  for (const sched::GraphDelta& delta : stream.deltas) {
    ExtendRequest extend;
    extend.session = session;
    extend.delta = delta;
    ASSERT_TRUE(response_ok(client_.call(serialize_extend(extend))));
  }
  CloseRequest close;
  close.session = session;
  ASSERT_TRUE(response_ok(client_.call(serialize_close(close))));

  // Session responses are never cached (they depend on mutable session
  // state), so the whole-schedule cache saw zero traffic.
  EXPECT_EQ(server_->cache().hits(), hits);
  EXPECT_EQ(server_->cache().misses(), misses);
  EXPECT_EQ(server_->cache().entries(), 0u);
}

TEST_F(ServeTest, SessionGaugeAndCountersAreExposed) {
  const std::uint64_t submits_before =
      obs::metrics().counter("serve.incremental.submits").value();
  const fuzz::ArrivalStream stream = fuzz::arrival_stream(17, 2);
  const std::string submitted =
      client_.call(serialize_submit(submit_from(stream)));
  ASSERT_TRUE(response_ok(submitted));

  const obs::json::Value stats = obs::json::parse(client_.stats());
  const obs::json::Value* body = stats.find("stats");
  ASSERT_NE(body, nullptr);
  ASSERT_NE(body->find("sessions"), nullptr);
  EXPECT_EQ(body->find("sessions")->number, 1.0);
  EXPECT_GE(obs::metrics().counter("serve.incremental.submits").value(),
            submits_before + 1);

  const std::string exposition = response_metrics_text(client_.metrics());
  EXPECT_NE(exposition.find("ptask_serve_sessions 1"), std::string::npos);

  CloseRequest close;
  close.session = session_id_of(submitted);
  ASSERT_TRUE(response_ok(client_.call(serialize_close(close))));
  const obs::json::Value after = obs::json::parse(client_.stats());
  EXPECT_EQ(after.find("stats")->find("sessions")->number, 0.0);
}

TEST(ServeSessions, DistinctSessionsExtendConcurrentlyAndStayIsolated) {
  ServerOptions options;
  options.num_workers = 8;
  Server server(options);
  server.start();
  constexpr int kThreads = 6;
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&server, &failures, t] {
      try {
        const fuzz::ArrivalStream stream =
            fuzz::arrival_stream(100 + static_cast<std::uint64_t>(t), 4);
        const cost::CostModel cost{arch::Machine(stream.instance.machine)};
        sched::IncrementalScheduler direct(cost);
        direct.reset(stream.initial, stream.instance.total_cores,
                     stream.initial_release);
        Client client;
        client.connect("127.0.0.1", server.port());
        const std::string submitted =
            client.call(serialize_submit(submit_from(stream)));
        if (!response_ok(submitted) ||
            response_schedule_json(submitted) !=
                serialize_schedule(direct.current())) {
          failures.fetch_add(1);
          return;
        }
        const std::string session = session_id_of(submitted);
        for (const sched::GraphDelta& delta : stream.deltas) {
          ExtendRequest extend;
          extend.session = session;
          extend.delta = delta;
          const std::string response = client.call(serialize_extend(extend));
          if (!response_ok(response) ||
              response_schedule_json(response) !=
                  serialize_schedule(direct.extend(delta))) {
            failures.fetch_add(1);
          }
          // Interleave cached whole-schedule traffic with the extends so
          // TSan sees session state and the schedule cache used together.
          const std::string cached = client.schedule(tiny_request());
          if (!response_ok(cached)) failures.fetch_add(1);
        }
        CloseRequest close;
        close.session = session;
        if (!response_ok(client.call(serialize_close(close)))) {
          failures.fetch_add(1);
        }
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.num_sessions(), 0u);
  server.stop();
}

// ---- admission control (PTS008) ----

/// A compute-heavy request (hundreds of tasks through the portfolio) that
/// keeps the single worker busy for many milliseconds -- long enough for
/// concurrently sent requests to pile up behind it deterministically.
ScheduleRequest heavy_request() {
  // Fuzz seed 406: a 26-task series-parallel graph on 104 cores -- far
  // more cores than tasks, so CPR widens allocations through thousands of
  // trial schedules and the portfolio run takes tens of milliseconds (the
  // slowest shape in the loadgen pool, and deterministic by seed).
  return fuzz_request(fuzz::random_instance(406), "portfolio");
}

TEST(ServeOverload, Pts008QueueFullCarriesRetryAfterAndCountsRejections) {
  ServerOptions options;
  options.num_workers = 1;
  options.max_queue = 1;
  options.overload_retry_after_ms = 77;
  Server server(options);
  server.start();
  const std::uint64_t rejected_before = obs::metrics()
                                            .counter("serve.queue.rejected")
                                            .value();

  // One heavy request parks the worker; with one queue slot, a concurrent
  // burst must overflow.  Every response is either a schedule or a PTS008.
  std::thread heavy([&] {
    Client client;
    client.connect("127.0.0.1", server.port());
    EXPECT_TRUE(response_ok(client.call(serialize_request(heavy_request()))));
  });
  // Only start the burst once the worker has picked the heavy job up --
  // otherwise the burst can win the race for the single queue slot and the
  // heavy request itself gets the rejection.
  while (server.in_flight() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  constexpr int kBurst = 16;
  std::atomic<int> overloaded{0};
  std::atomic<int> unexpected{0};
  std::vector<std::thread> threads;
  const std::string payload = serialize_request(tiny_request());
  for (int t = 0; t < kBurst; ++t) {
    threads.emplace_back([&] {
      Client client;
      client.connect("127.0.0.1", server.port());
      const std::string response = client.call(payload);
      if (response_error_code(response) == kErrOverloaded) {
        overloaded.fetch_add(1);
        // The rejection carries the configured backoff hint.
        EXPECT_EQ(response_retry_after_ms(response), 77);
      } else if (!response_ok(response)) {
        unexpected.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  heavy.join();

  EXPECT_EQ(unexpected.load(), 0);
  EXPECT_GE(overloaded.load(), 1) << "burst never tripped admission control";
  EXPECT_GE(obs::metrics().counter("serve.queue.rejected").value(),
            rejected_before + static_cast<std::uint64_t>(overloaded.load()));
  // The server survived the burst and still answers.
  Client after;
  after.connect("127.0.0.1", server.port());
  EXPECT_TRUE(response_ok(after.call("{\"type\":\"ping\"}")));
  server.stop();
}

TEST_F(ServeTest, Pts008NegativeSequentialTrafficIsNeverRejected) {
  // One request in flight at a time can never overflow the (default 1024)
  // admission queue: no PTS008, and the rejected counter stays flat.
  const std::uint64_t rejected_before = obs::metrics()
                                            .counter("serve.queue.rejected")
                                            .value();
  const std::string payload = serialize_request(tiny_request());
  for (int i = 0; i < 16; ++i) {
    const std::string response = client_.call(payload);
    EXPECT_TRUE(response_ok(response)) << response;
    EXPECT_NE(response_error_code(response), kErrOverloaded);
  }
  EXPECT_EQ(obs::metrics().counter("serve.queue.rejected").value(),
            rejected_before);
  EXPECT_EQ(response_retry_after_ms("{\"ok\":true}"), -1);
}

TEST(ServeOverload, MaxQueueOneBurstStaysBoundedAndCrashFree) {
  ServerOptions options;
  options.num_workers = 1;
  options.max_queue = 1;
  Server server(options);
  server.start();

  // Mixed burst (schedules, pings, malformed frames) against the tightest
  // possible queue: every reply is a well-formed response, the reported
  // depth never exceeds the bound, and the server drains cleanly.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 6;
  std::atomic<int> malformed_responses{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Client client;
      client.connect("127.0.0.1", server.port());
      for (int i = 0; i < kPerThread; ++i) {
        std::string payload;
        switch ((t + i) % 3) {
          case 0: payload = serialize_request(tiny_request()); break;
          case 1: payload = "{\"type\":\"ping\"}"; break;
          default: payload = "{broken json!"; break;
        }
        const std::string response = client.call(payload);
        try {
          (void)obs::json::parse(response);
        } catch (const std::exception&) {
          malformed_responses.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(malformed_responses.load(), 0);

  Client observer;
  observer.connect("127.0.0.1", server.port());
  const obs::json::Value stats = obs::json::parse(observer.stats());
  const obs::json::Value* queue = stats.find("stats")->find("queue");
  ASSERT_NE(queue, nullptr);
  EXPECT_LE(queue->find("depth")->number, queue->find("max")->number);
  EXPECT_EQ(queue->find("max")->number, 1.0);
  server.stop();
  EXPECT_FALSE(server.running());
}

// ---- drain-aware, prompt shutdown ----

TEST(ServeShutdown, StopAnswersAlreadyAdmittedRequests) {
  ServerOptions options;
  options.num_workers = 1;
  Server server(options);
  server.start();

  // Park the worker behind a heavy request, queue a few light ones, then
  // stop() mid-flight: every admitted request must still get its response
  // (the queue closes to new arrivals but drains what it accepted).
  std::atomic<int> answered{0};
  std::atomic<int> failed{0};
  std::vector<std::thread> threads;
  threads.emplace_back([&] {
    Client client;
    client.connect("127.0.0.1", server.port());
    if (response_ok(client.call(serialize_request(heavy_request())))) {
      answered.fetch_add(1);
    } else {
      failed.fetch_add(1);
    }
  });
  const std::string light = serialize_request(tiny_request());
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      Client client;
      client.connect("127.0.0.1", server.port());
      const std::string response = client.call(light);
      // Admitted requests are answered; ones racing the shutdown may see
      // the connection close instead, which the client surfaces as a
      // throw -- both are orderly, only malformed replies count as failure.
      if (!response.empty() && response_ok(response)) answered.fetch_add(1);
    });
  }
  // Give the burst a moment to be admitted, then shut down mid-compute.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server.stop();
  for (std::thread& thread : threads) thread.join();
  EXPECT_GE(answered.load(), 1);
  EXPECT_EQ(failed.load(), 0);
  EXPECT_FALSE(server.running());
}

TEST(ServeShutdown, StopIsPromptWithIdleOpenConnections) {
  // The old acceptor/worker loops polled a stop flag every 100ms; the
  // reactor wakes on an eventfd instead, so stopping an idle server with
  // open connections is near-immediate.
  Server server;
  server.start();
  Client a;
  Client b;
  a.connect("127.0.0.1", server.port());
  b.connect("127.0.0.1", server.port());
  ASSERT_TRUE(response_ok(a.call("{\"type\":\"ping\"}")));
  const auto t0 = std::chrono::steady_clock::now();
  server.stop();
  const double stop_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(stop_ms, 500.0) << "stop() took " << stop_ms << "ms";
}

TEST(ServeShutdown, StatsAfterStopKeepQueueTotals) {
  // ptask_served dumps render_stats() once more after the drain; the
  // admission totals must survive stop() instead of resetting to zero.
  Server server;
  server.start();
  {
    Client client;
    client.connect("127.0.0.1", server.port());
    ASSERT_TRUE(response_ok(client.call(serialize_request(tiny_request()))));
  }
  server.stop();
  const obs::json::Value stats = obs::json::parse(server.render_stats());
  const obs::json::Value* queue = stats.find("stats")->find("queue");
  ASSERT_NE(queue, nullptr);
  EXPECT_GE(queue->find("enqueued")->number, 1.0);
  EXPECT_EQ(queue->find("depth")->number, 0.0);
}

// ---- compatible-request batching ----

TEST(ServeBatch, SharedPricingKeepsBatchMembersByteIdentical) {
  // Unit-level bit-identity: for every fuzz family, several graphs run
  // through one BatchScheduler (shared content-keyed pricing cache) must
  // serialize exactly like fresh unbatched runs.
  std::map<fuzz::GraphFamily, int> covered;
  std::uint64_t seed = 20;
  const int per_family = 2;
  while (covered.size() < 5u ||
         std::any_of(covered.begin(), covered.end(),
                     [&](const auto& kv) { return kv.second < per_family; })) {
    const fuzz::Instance instance = fuzz::random_instance(seed++);
    if (covered[instance.family] >= per_family) continue;
    if (instance.graph.num_tasks() > 200) continue;  // keep the test quick
    ++covered[instance.family];
    const cost::CostModel base{arch::Machine(instance.machine)};
    for (const std::string strategy : {"layer", "portfolio"}) {
      const sched::BatchScheduler batch(strategy, base);
      const auto direct =
          sched::SchedulerRegistry::instance().make(strategy, base);
      const std::string batched = serialize_schedule(
          batch.run(instance.graph, instance.total_cores));
      const std::string unbatched = serialize_schedule(
          direct->run(instance.graph, instance.total_cores));
      EXPECT_EQ(batched, unbatched) << instance.name << " via " << strategy;
      // Re-running the same graph through the shared cache prices every
      // task from the cache -- and stays byte-identical.
      const std::uint64_t misses_before = batch.pricing_misses();
      EXPECT_EQ(serialize_schedule(
                    batch.run(instance.graph, instance.total_cores)),
                unbatched);
      EXPECT_GT(batch.pricing_hits(), 0u) << instance.name;
      EXPECT_EQ(batch.pricing_misses(), misses_before)
          << instance.name << ": repeat run should not re-price any task";
    }
  }
}

TEST(ServeBatch, CoalescedWireRequestsMatchDirectRunsAndShareOneRun) {
  ServerOptions options;
  options.num_workers = 1;
  options.batch_max = 8;
  options.batch_window_us = 50000;  // generous: senders start within 50ms
  Server server(options);
  server.start();

  // Compatible requests (same scheduler/cores/machine, distinct graphs)
  // sent concurrently against one worker coalesce into a shared batch; the
  // responses must be byte-identical to direct unbatched runs regardless.
  const std::uint64_t coalesced_before =
      obs::metrics().counter("serve.batch.coalesced").value();
  std::vector<ScheduleRequest> requests;
  const arch::MachineSpec machine = tiny_request().machine;
  for (int i = 0; i < 4; ++i) {
    ScheduleRequest request = tiny_request();
    request.machine = machine;
    core::MTask extra("extra" + std::to_string(i), 3.0e8 + 1.0e7 * i);
    request.graph.add_task(extra);
    requests.push_back(std::move(request));
  }
  std::vector<std::string> responses(requests.size());
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    threads.emplace_back([&, i] {
      Client client;
      client.connect("127.0.0.1", server.port());
      responses[i] = client.call(serialize_request(requests[i]));
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (std::size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(response_ok(responses[i])) << responses[i];
    EXPECT_EQ(response_schedule_json(responses[i]),
              direct_schedule_bytes(requests[i]))
        << "batched response " << i << " diverged from the direct run";
  }
  EXPECT_GE(obs::metrics().counter("serve.batch.coalesced").value(),
            coalesced_before + 2)
      << "concurrent compatible requests never coalesced";
  server.stop();
}

}  // namespace
}  // namespace ptask::serve
