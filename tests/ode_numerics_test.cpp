// Numerical tests for the ODE systems and the five solution methods:
// correctness against closed-form/dense references and empirical
// convergence orders.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>

#include "ptask/ode/bruss2d.hpp"
#include "ptask/ode/diirk.hpp"
#include "ptask/ode/epol.hpp"
#include "ptask/ode/irk.hpp"
#include "ptask/ode/pab.hpp"
#include "ptask/ode/schroed.hpp"
#include "ptask/ode/solver_base.hpp"

namespace ptask::ode {
namespace {

// Scalar linear test problem y' = -y with known solution (wrapped as an
// OdeSystem of size 4 to exercise block handling).
class Decay final : public OdeSystem {
 public:
  std::size_t size() const override { return 4; }
  void eval(double, std::span<const double> y, std::span<double> f,
            std::size_t begin, std::size_t end) const override {
    for (std::size_t i = begin; i < end; ++i) f[i] = -y[i];
  }
  std::vector<double> initial_state() const override {
    return {1.0, 2.0, -1.0, 0.5};
  }
  double eval_flop_per_component() const override { return 1.0; }
  bool is_dense() const override { return false; }
  std::string name() const override { return "decay"; }
};

TEST(OdeSystem, MaxNormDiff) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{1.0, 2.5, 2.0};
  EXPECT_DOUBLE_EQ(max_norm_diff(a, b), 1.0);
  const std::vector<double> c{1.0};
  EXPECT_THROW(max_norm_diff(a, c), std::invalid_argument);
}

TEST(Bruss2D, SizesAndInitialState) {
  const Bruss2D sys(8);
  EXPECT_EQ(sys.size(), 128u);
  EXPECT_FALSE(sys.is_dense());
  const std::vector<double> y0 = sys.initial_state();
  ASSERT_EQ(y0.size(), 128u);
  // u in [2, 2.25], v in [1, 1.8].
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_GE(y0[i], 2.0);
    EXPECT_LE(y0[i], 2.25);
  }
  for (std::size_t i = 64; i < 128; ++i) {
    EXPECT_GE(y0[i], 1.0);
    EXPECT_LE(y0[i], 1.8);
  }
}

TEST(Bruss2D, UniformStateHasUniformDerivative) {
  // For a spatially constant state the Laplacian vanishes: f is the pure
  // reaction term, identical in every grid point.
  const Bruss2D sys(6, 3.4, 1.0, 2e-3);
  const std::size_t half = 36;
  std::vector<double> y(72, 0.0);
  for (std::size_t i = 0; i < half; ++i) y[i] = 2.0;
  for (std::size_t i = half; i < 72; ++i) y[i] = 1.5;
  std::vector<double> f(72);
  sys.eval_all(0.0, y, f);
  const double fu = 1.0 + 4.0 * 1.5 - 4.4 * 2.0;  // B + u^2 v - (A+1) u
  const double fv = 3.4 * 2.0 - 4.0 * 1.5;        // A u - u^2 v
  for (std::size_t i = 0; i < half; ++i) EXPECT_NEAR(f[i], fu, 1e-12);
  for (std::size_t i = half; i < 72; ++i) EXPECT_NEAR(f[i], fv, 1e-12);
}

TEST(Bruss2D, PartialEvalMatchesFullEval) {
  const Bruss2D sys(5);
  const std::vector<double> y = sys.initial_state();
  std::vector<double> full(sys.size()), parts(sys.size());
  sys.eval_all(0.0, y, full);
  sys.eval(0.0, y, parts, 0, 10);
  sys.eval(0.0, y, parts, 10, sys.size());
  for (std::size_t i = 0; i < sys.size(); ++i) {
    EXPECT_DOUBLE_EQ(parts[i], full[i]);
  }
}

TEST(Schroed, DenseEvalIsBoundedAndPartialConsistent) {
  const Schroed sys(64);
  EXPECT_TRUE(sys.is_dense());
  EXPECT_GT(sys.eval_flop_per_component(), 64.0);
  const std::vector<double> y = sys.initial_state();
  std::vector<double> full(sys.size()), parts(sys.size());
  sys.eval_all(0.0, y, full);
  sys.eval(0.0, y, parts, 0, 32);
  sys.eval(0.0, y, parts, 32, 64);
  for (std::size_t i = 0; i < sys.size(); ++i) {
    EXPECT_DOUBLE_EQ(parts[i], full[i]);
    EXPECT_LT(std::fabs(full[i]), 10.0);
  }
}

TEST(SolveDense, SolvesSmallSystems) {
  // [[2, 1], [1, 3]] x = [5, 10] -> x = [1, 3].
  const std::vector<double> x =
      solve_dense({2.0, 1.0, 1.0, 3.0}, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
  EXPECT_THROW(solve_dense({0.0, 0.0, 0.0, 0.0}, {1.0, 1.0}),
               std::runtime_error);
}

TEST(GaussTableau, NodesWeightsAndOrderConditions) {
  for (int s : {1, 2, 3, 4}) {
    const CollocationTableau tab = gauss_tableau(s);
    ASSERT_EQ(tab.stages(), s);
    double weight_sum = 0.0;
    for (int j = 0; j < s; ++j) {
      EXPECT_GT(tab.c[static_cast<std::size_t>(j)], 0.0);
      EXPECT_LT(tab.c[static_cast<std::size_t>(j)], 1.0);
      weight_sum += tab.b[static_cast<std::size_t>(j)];
    }
    EXPECT_NEAR(weight_sum, 1.0, 1e-12);  // B(1)
    // C(q): sum_j a_ij c_j^{q-1} = c_i^q / q.
    for (int i = 0; i < s; ++i) {
      for (int q = 1; q <= s; ++q) {
        double lhs = 0.0;
        for (int j = 0; j < s; ++j) {
          lhs += tab.a[static_cast<std::size_t>(i * s + j)] *
                 std::pow(tab.c[static_cast<std::size_t>(j)], q - 1);
        }
        EXPECT_NEAR(lhs, std::pow(tab.c[static_cast<std::size_t>(i)], q) / q,
                    1e-10);
      }
    }
  }
  EXPECT_THROW(gauss_tableau(0), std::invalid_argument);
}

TEST(GaussTableau, TwoStageMatchesKnownValues) {
  const CollocationTableau tab = gauss_tableau(2);
  const double r = std::sqrt(3.0) / 6.0;
  EXPECT_NEAR(tab.c[0], 0.5 - r, 1e-12);
  EXPECT_NEAR(tab.c[1], 0.5 + r, 1e-12);
  EXPECT_NEAR(tab.b[0], 0.5, 1e-12);
  EXPECT_NEAR(tab.b[1], 0.5, 1e-12);
}

TEST(Integrate, StopsExactlyAtTe) {
  Decay sys;
  Epol solver(2);
  const IntegrationResult result =
      solver.integrate(sys, 0.0, 1.05, 0.1, sys.initial_state());
  EXPECT_NEAR(result.t_end, 1.05, 1e-12);
  EXPECT_EQ(result.steps, 11u);
}

TEST(Integrate, Validation) {
  Decay sys;
  Epol solver(2);
  EXPECT_THROW(solver.integrate(sys, 0.0, 1.0, -0.1, sys.initial_state()),
               std::invalid_argument);
  EXPECT_THROW(solver.integrate(sys, 1.0, 0.0, 0.1, sys.initial_state()),
               std::invalid_argument);
  EXPECT_THROW(solver.integrate(sys, 0.0, 1.0, 0.1, {1.0}),
               std::invalid_argument);
}

// Accuracy on the linear decay problem: every solver must hit exp(-t)
// closely at modest step sizes.
TEST(Solvers, DecayAccuracy) {
  Decay sys;
  const double te = 1.0;
  const std::vector<double> y0 = sys.initial_state();

  std::vector<std::unique_ptr<OneStepSolver>> solvers;
  solvers.push_back(std::make_unique<Epol>(4));
  solvers.push_back(std::make_unique<Irk>(2, 5));
  solvers.push_back(std::make_unique<Diirk>(2, 5, 3));
  solvers.push_back(std::make_unique<Pab>(4));
  solvers.push_back(std::make_unique<Pabm>(4, 2));

  for (auto& solver : solvers) {
    const IntegrationResult result =
        solver->integrate(sys, 0.0, te, 0.05, y0);
    for (std::size_t i = 0; i < y0.size(); ++i) {
      EXPECT_NEAR(result.state[i], y0[i] * std::exp(-te), 1e-5)
          << solver->name();
    }
  }
}

TEST(Solvers, RK4Helper) {
  Decay sys;
  std::vector<double> y = sys.initial_state();
  for (int i = 0; i < 10; ++i) {
    rk4_step(sys, i * 0.1, 0.1, y);
  }
  EXPECT_NEAR(y[0], std::exp(-1.0), 1e-6);
}

// Empirical convergence orders on the (nonlinear, smooth) Brusselator.
struct OrderCase {
  const char* name;
  int expected_order;
  std::function<std::unique_ptr<OneStepSolver>()> make;
};

class ConvergenceTest : public ::testing::TestWithParam<OrderCase> {};

TEST_P(ConvergenceTest, ObservedOrderMatchesTheory) {
  const OrderCase& c = GetParam();
  const Bruss2D sys(6);  // n = 72: small enough for tight step sweeps
  std::unique_ptr<OneStepSolver> solver = c.make();
  ASSERT_EQ(solver->order(), c.expected_order);
  const double order = estimate_order(*solver, sys, 0.0, 0.2, 0.02);
  EXPECT_GT(order, c.expected_order - 0.6) << c.name;
  // An order higher than expected is fine (superconvergence on easy
  // problems); an order clearly below is a bug.
}

INSTANTIATE_TEST_SUITE_P(
    AllSolvers, ConvergenceTest,
    ::testing::Values(
        OrderCase{"EPOL_R2", 2, [] { return std::make_unique<Epol>(2); }},
        OrderCase{"EPOL_R3", 3, [] { return std::make_unique<Epol>(3); }},
        OrderCase{"EPOL_R4", 4, [] { return std::make_unique<Epol>(4); }},
        OrderCase{"IRK_K2_m3", 4,
                  [] { return std::make_unique<Irk>(2, 3); }},
        OrderCase{"IRK_K2_m1", 2,
                  [] { return std::make_unique<Irk>(2, 1); }},
        OrderCase{"DIIRK_K2_m3", 4,
                  [] { return std::make_unique<Diirk>(2, 3, 4); }},
        OrderCase{"PAB_K2", 2, [] { return std::make_unique<Pab>(2); }},
        OrderCase{"PAB_K3", 3, [] { return std::make_unique<Pab>(3); }},
        OrderCase{"PABM_K2_m2", 3,
                  [] { return std::make_unique<Pabm>(2, 2); }},
        OrderCase{"PABM_K3_m2", 4,
                  [] { return std::make_unique<Pabm>(3, 2); }}),
    [](const ::testing::TestParamInfo<OrderCase>& info) {
      return info.param.name;
    });

// Cross-method agreement: all methods must converge to the same trajectory.
TEST(Solvers, AgreeOnBrusselator) {
  const Bruss2D sys(6);
  const std::vector<double> y0 = sys.initial_state();
  const double te = 0.1, h = 0.002;
  Irk reference(3, 7);
  const std::vector<double> ref =
      reference.integrate(sys, 0.0, te, h / 4.0, y0).state;

  Epol epol(4);
  Diirk diirk(2, 5, 3);
  Pabm pabm(4, 3);
  EXPECT_LT(max_norm_diff(epol.integrate(sys, 0.0, te, h, y0).state, ref),
            1e-7);
  EXPECT_LT(max_norm_diff(diirk.integrate(sys, 0.0, te, h, y0).state, ref),
            1e-7);
  EXPECT_LT(max_norm_diff(pabm.integrate(sys, 0.0, te, h, y0).state, ref),
            1e-7);
}

TEST(Solvers, EpolCombineReproducesRichardson) {
  // For R=2 the Aitken-Neville combination is 2*T2 - T1.
  std::vector<std::vector<double>> approx{{1.0, 2.0}, {1.5, 2.5}};
  const std::vector<double> combined = Epol::combine(std::move(approx));
  EXPECT_DOUBLE_EQ(combined[0], 2.0 * 1.5 - 1.0);
  EXPECT_DOUBLE_EQ(combined[1], 2.0 * 2.5 - 2.0);
}

TEST(Solvers, BlockAdamsResetClearsHistory) {
  Decay sys;
  Pab solver(3);
  const std::vector<double> y0 = sys.initial_state();
  const IntegrationResult first = solver.integrate(sys, 0.0, 0.5, 0.05, y0);
  const IntegrationResult second = solver.integrate(sys, 0.0, 0.5, 0.05, y0);
  EXPECT_EQ(first.state, second.state);  // integrate() resets history
}

TEST(Solvers, InvalidParameters) {
  EXPECT_THROW(Epol(0), std::invalid_argument);
  EXPECT_THROW(Irk(2, 0), std::invalid_argument);
  EXPECT_THROW(Diirk(2, 1, 0), std::invalid_argument);
  EXPECT_THROW(Pab(0), std::invalid_argument);
  EXPECT_THROW(Pabm(2, 0), std::invalid_argument);
}

}  // namespace
}  // namespace ptask::ode
