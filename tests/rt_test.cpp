// Tests for the shared-memory M-task runtime: thread teams, group
// collectives, and the schedule executor.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <mutex>
#include <numeric>

#include "ptask/obs/metrics.hpp"
#include "ptask/rt/executor.hpp"
#include "ptask/rt/group_comm.hpp"
#include "ptask/rt/thread_team.hpp"
#include "ptask/sched/layer_scheduler.hpp"

namespace ptask::rt {
namespace {

TEST(ThreadTeam, RunsEveryWorkerExactlyOnce) {
  ThreadTeam team(4);
  std::vector<std::atomic<int>> hits(4);
  team.run([&](int w) { hits[static_cast<std::size_t>(w)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadTeam, IsReusable) {
  ThreadTeam team(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 10; ++round) {
    team.run([&](int) { total++; });
  }
  EXPECT_EQ(total.load(), 30);
}

TEST(ThreadTeam, PropagatesExceptions) {
  ThreadTeam team(2);
  EXPECT_THROW(team.run([](int w) {
    if (w == 1) throw std::runtime_error("boom");
  }),
               std::runtime_error);
  // The team survives and stays usable.
  std::atomic<int> ok{0};
  team.run([&](int) { ok++; });
  EXPECT_EQ(ok.load(), 2);
}

TEST(ThreadTeam, RejectsNonPositiveSize) {
  EXPECT_THROW(ThreadTeam(0), std::invalid_argument);
}

TEST(Barrier, SynchronizesCounters) {
  const int size = 4;
  Barrier barrier(size);
  ThreadTeam team(size);
  std::vector<int> before(static_cast<std::size_t>(size), 0);
  std::atomic<bool> all_wrote_before_any_read{true};
  team.run([&](int w) {
    before[static_cast<std::size_t>(w)] = 1;
    barrier.arrive_and_wait();
    for (int v : before) {
      if (v != 1) all_wrote_before_any_read = false;
    }
  });
  EXPECT_TRUE(all_wrote_before_any_read.load());
}

TEST(Barrier, Reusable) {
  Barrier barrier(2);
  ThreadTeam team(2);
  std::atomic<int> phase_sum{0};
  team.run([&](int) {
    for (int i = 0; i < 100; ++i) {
      barrier.arrive_and_wait();
      phase_sum++;
      barrier.arrive_and_wait();
    }
  });
  EXPECT_EQ(phase_sum.load(), 200);
}

TEST(GroupComm, BcastDelivers) {
  const int size = 4;
  GroupComm comm(size);
  ThreadTeam team(size);
  std::vector<std::vector<double>> data(static_cast<std::size_t>(size),
                                        std::vector<double>(3, 0.0));
  data[2] = {1.0, 2.0, 3.0};
  team.run([&](int w) { comm.bcast(w, 2, data[static_cast<std::size_t>(w)]); });
  for (const auto& d : data) {
    EXPECT_EQ(d, (std::vector<double>{1.0, 2.0, 3.0}));
  }
}

TEST(GroupComm, AllgatherConcatenatesInRankOrder) {
  const int size = 3;
  GroupComm comm(size);
  ThreadTeam team(size);
  // Uneven contributions: 1, 2, 3 elements.
  std::vector<std::vector<double>> contrib{{10.0}, {20.0, 21.0},
                                           {30.0, 31.0, 32.0}};
  std::vector<std::vector<double>> out(static_cast<std::size_t>(size),
                                       std::vector<double>(6, 0.0));
  team.run([&](int w) {
    comm.allgather(w, contrib[static_cast<std::size_t>(w)],
                   out[static_cast<std::size_t>(w)]);
  });
  const std::vector<double> expected{10.0, 20.0, 21.0, 30.0, 31.0, 32.0};
  for (const auto& o : out) EXPECT_EQ(o, expected);
}

TEST(GroupComm, AllreduceSumAndMax) {
  const int size = 4;
  GroupComm comm(size);
  ThreadTeam team(size);
  std::vector<double> sums(static_cast<std::size_t>(size), 0.0);
  std::vector<double> maxs(static_cast<std::size_t>(size), 0.0);
  team.run([&](int w) {
    sums[static_cast<std::size_t>(w)] =
        comm.allreduce_sum(w, static_cast<double>(w + 1));
    maxs[static_cast<std::size_t>(w)] =
        comm.allreduce_max(w, static_cast<double>(10 - w));
  });
  for (double s : sums) EXPECT_DOUBLE_EQ(s, 10.0);
  for (double m : maxs) EXPECT_DOUBLE_EQ(m, 10.0);
}

TEST(GroupComm, RepeatedCollectivesDoNotCrossTalk) {
  const int size = 2;
  GroupComm comm(size);
  ThreadTeam team(size);
  std::vector<double> results(static_cast<std::size_t>(size) * 5, 0.0);
  team.run([&](int w) {
    for (int i = 0; i < 5; ++i) {
      results[static_cast<std::size_t>(w * 5 + i)] =
          comm.allreduce_sum(w, static_cast<double>(i));
    }
  });
  for (int w = 0; w < size; ++w) {
    for (int i = 0; i < 5; ++i) {
      EXPECT_DOUBLE_EQ(results[static_cast<std::size_t>(w * 5 + i)], 2.0 * i);
    }
  }
}

// --- executor ---

arch::Machine machine() {
  arch::MachineSpec spec = arch::chic();
  spec.num_nodes = 4;
  return arch::Machine(spec);
}

TEST(Executor, RunsEveryTaskSpmdOnItsGroup) {
  // Four independent comm-heavy tasks on 8 virtual cores: the scheduler
  // splits into groups; every task must execute once per group member.
  core::TaskGraph g;
  for (int i = 0; i < 4; ++i) {
    core::MTask t("t" + std::to_string(i), 1.0e10);
    t.add_comm(core::CollectiveOp{core::CollectiveKind::Allgather,
                                  core::CommScope::Group, 8u << 20, 8});
    g.add_task(std::move(t));
  }
  const cost::CostModel cm(machine());
  const sched::LayeredSchedule s = sched::LayerScheduler(cm).schedule(g, 8);

  std::vector<std::atomic<int>> invocations(4);
  std::vector<std::atomic<int>> group_sizes(4);
  std::vector<TaskFn> fns(4);
  for (int i = 0; i < 4; ++i) {
    fns[static_cast<std::size_t>(i)] = [&, i](ExecContext& ctx) {
      invocations[static_cast<std::size_t>(i)]++;
      group_sizes[static_cast<std::size_t>(i)] = ctx.group_size;
      // The communicator must span exactly the group.
      EXPECT_EQ(ctx.comm->size(), ctx.group_size);
      EXPECT_LT(ctx.group_rank, ctx.group_size);
    };
  }
  Executor exec(8);
  exec.run(s, fns);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(invocations[static_cast<std::size_t>(i)].load(),
              group_sizes[static_cast<std::size_t>(i)].load());
  }
}

TEST(Executor, ChainMembersRunInOrderOnTheSameGroup) {
  core::TaskGraph g;
  const core::TaskId a = g.add_task(core::MTask("a", 1.0));
  const core::TaskId b = g.add_task(core::MTask("b", 1.0));
  g.add_edge(a, b);
  const cost::CostModel cm(machine());
  const sched::LayeredSchedule s = sched::LayerScheduler(cm).schedule(g, 4);

  std::vector<int> order;
  std::mutex mtx;
  std::vector<TaskFn> fns(2);
  fns[static_cast<std::size_t>(a)] = [&](ExecContext& ctx) {
    if (ctx.group_rank == 0) {
      std::lock_guard<std::mutex> lock(mtx);
      order.push_back(0);
    }
    ctx.comm->barrier(ctx.group_rank);
  };
  fns[static_cast<std::size_t>(b)] = [&](ExecContext& ctx) {
    ctx.comm->barrier(ctx.group_rank);
    if (ctx.group_rank == 0) {
      std::lock_guard<std::mutex> lock(mtx);
      order.push_back(1);
    }
  };
  Executor exec(4);
  exec.run(s, fns);
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(Executor, LayersAreSynchronized) {
  // Producer layer writes, consumer layer reads: with the executor's
  // inter-layer barrier the consumer always sees the final value.
  core::TaskGraph g;
  const core::TaskId p1 = g.add_task(core::MTask("p1", 1.0));
  const core::TaskId p2 = g.add_task(core::MTask("p2", 1.0));
  core::MTask consumer_task("c", 1.0);
  const core::TaskId c = g.add_task(std::move(consumer_task));
  g.add_edge(p1, c);
  g.add_edge(p2, c);

  const cost::CostModel cm(machine());
  const sched::LayeredSchedule s = sched::LayerScheduler(cm).schedule(g, 4);
  std::atomic<int> produced{0};
  std::atomic<int> seen{-1};
  std::vector<TaskFn> fns(3);
  fns[static_cast<std::size_t>(p1)] = [&](ExecContext&) { produced++; };
  fns[static_cast<std::size_t>(p2)] = [&](ExecContext&) { produced++; };
  fns[static_cast<std::size_t>(c)] = [&](ExecContext& ctx) {
    if (ctx.group_rank == 0) seen = produced.load();
  };
  Executor exec(4);
  exec.run(s, fns);
  // Both producers ran on multiple cores each.
  EXPECT_EQ(seen.load(), produced.load());
  EXPECT_GE(seen.load(), 2);
}

TEST(Executor, OrthogonalCommunicatorsBindSamePositions) {
  // Four equal groups of two: every member must see an orthogonal
  // communicator of size 4 whose rank is the group index, and an orthogonal
  // allreduce must combine values across groups, not within them.
  core::TaskGraph g;
  for (int i = 0; i < 4; ++i) {
    core::MTask t("t" + std::to_string(i), 1.0e10);
    t.add_comm(core::CollectiveOp{core::CollectiveKind::Allgather,
                                  core::CommScope::Group, 8u << 20, 8});
    g.add_task(std::move(t));
  }
  const cost::CostModel cm(machine());
  sched::LayerSchedulerOptions opts;
  opts.fixed_groups = 4;
  const sched::LayeredSchedule s =
      sched::LayerScheduler(cm, opts).schedule(g, 8);

  std::vector<double> sums(8, 0.0);
  std::vector<TaskFn> fns(4);
  for (int i = 0; i < 4; ++i) {
    fns[static_cast<std::size_t>(i)] = [&](ExecContext& ctx) {
      ASSERT_NE(ctx.orth, nullptr);
      EXPECT_EQ(ctx.orth->size(), 4);
      const double value = 100.0 * ctx.group_index + ctx.group_rank;
      const double sum = ctx.orth->allreduce_sum(ctx.group_index, value);
      sums[static_cast<std::size_t>(ctx.group_index * 2 + ctx.group_rank)] =
          sum;
    };
  }
  Executor exec(8);
  exec.run(s, fns);
  // Sum over groups at position p: 100*(0+1+2+3) + 4*p = 600 + 4p.
  for (int gi = 0; gi < 4; ++gi) {
    EXPECT_DOUBLE_EQ(sums[static_cast<std::size_t>(gi * 2)], 600.0);
    EXPECT_DOUBLE_EQ(sums[static_cast<std::size_t>(gi * 2 + 1)], 604.0);
  }
}

/// Hand-built one-layer schedule with explicit group sizes and task
/// assignment (identity contraction), for exercising group structures the
/// scheduler search would not normally pick.
sched::LayeredSchedule manual_layer(const core::TaskGraph& g, int total_cores,
                                    std::vector<int> group_sizes,
                                    std::vector<int> task_group) {
  sched::LayeredSchedule s;
  s.total_cores = total_cores;
  s.contraction.contracted = g;
  s.contraction.members.resize(static_cast<std::size_t>(g.num_tasks()));
  s.contraction.representative.resize(static_cast<std::size_t>(g.num_tasks()));
  std::vector<core::TaskId> tasks;
  for (core::TaskId id = 0; id < g.num_tasks(); ++id) {
    s.contraction.members[static_cast<std::size_t>(id)] = {id};
    s.contraction.representative[static_cast<std::size_t>(id)] = id;
    tasks.push_back(id);
  }
  sched::ScheduledLayer layer;
  layer.tasks = std::move(tasks);
  layer.group_sizes = std::move(group_sizes);
  layer.task_group = std::move(task_group);
  s.layers.push_back(std::move(layer));
  return s;
}

TEST(Executor, UnequalGroupsGiveHighRanksNoOrthogonalComm) {
  // Groups of 3 and 1 cores: orthogonal communicators only exist up to the
  // smallest group's size, so only position 0 is bound across groups; the
  // higher ranks of the large group must see orth == nullptr.
  core::TaskGraph g;
  g.add_task(core::MTask("t0", 1.0));
  g.add_task(core::MTask("t1", 1.0));
  const sched::LayeredSchedule s = manual_layer(g, 4, {3, 1}, {0, 1});

  std::array<std::atomic<int>, 4> orth_size{};  // indexed by worker
  std::vector<TaskFn> fns(2);
  for (int i = 0; i < 2; ++i) {
    fns[static_cast<std::size_t>(i)] = [&](ExecContext& ctx) {
      const int worker =
          (ctx.group_index == 0 ? 0 : 3) + ctx.group_rank;  // layout offset
      orth_size[static_cast<std::size_t>(worker)] =
          ctx.orth == nullptr ? 0 : ctx.orth->size();
      if (ctx.orth != nullptr) {
        // Orthogonal rank == group index; lockstep across both groups.
        const double sum = ctx.orth->allreduce_sum(
            ctx.group_index, static_cast<double>(ctx.group_index + 1));
        EXPECT_DOUBLE_EQ(sum, 3.0);  // groups 0 and 1 contribute 1 and 2
      }
    };
  }
  Executor exec(4);
  exec.run(s, fns);
  EXPECT_EQ(orth_size[0].load(), 2);  // group 0, position 0: bound
  EXPECT_EQ(orth_size[1].load(), 0);  // group 0, positions 1-2: unbound
  EXPECT_EQ(orth_size[2].load(), 0);
  EXPECT_EQ(orth_size[3].load(), 2);  // group 1, position 0: bound
}

TEST(Executor, LockstepOrthogonalCollectivesAcrossThreeGroups) {
  // Three groups of two cores each running structurally identical tasks:
  // every position must be bound across all three groups, and a *sequence*
  // of orthogonal collectives must stay in lockstep (the stage-vector
  // solver pattern of paper Section 4.2).
  core::TaskGraph g;
  for (int i = 0; i < 3; ++i) {
    g.add_task(core::MTask("t" + std::to_string(i), 1.0));
  }
  const sched::LayeredSchedule s = manual_layer(g, 6, {2, 2, 2}, {0, 1, 2});

  std::array<std::atomic<int>, 6> checks_passed{};
  std::vector<TaskFn> fns(3);
  for (int i = 0; i < 3; ++i) {
    fns[static_cast<std::size_t>(i)] = [&](ExecContext& ctx) {
      ASSERT_NE(ctx.orth, nullptr);
      ASSERT_EQ(ctx.orth->size(), 3);
      const int worker = ctx.group_index * 2 + ctx.group_rank;
      int passed = 0;
      // Collective 1: sum of group indices across the three groups.
      const double sum = ctx.orth->allreduce_sum(
          ctx.group_index, static_cast<double>(ctx.group_index));
      if (sum == 3.0) ++passed;  // 0 + 1 + 2
      // Collective 2: max of position-scaled values.
      const double max = ctx.orth->allreduce_max(
          ctx.group_index,
          static_cast<double>(10 * ctx.group_index + ctx.group_rank));
      if (max == static_cast<double>(20 + ctx.group_rank)) ++passed;
      // Collective 3: broadcast from the middle group.
      std::array<double, 1> data{
          ctx.group_index == 1 ? 42.0 + ctx.group_rank : 0.0};
      ctx.orth->bcast(ctx.group_index, /*root=*/1, data);
      if (data[0] == 42.0 + ctx.group_rank) ++passed;
      checks_passed[static_cast<std::size_t>(worker)] = passed;
    };
  }
  Executor exec(6);
  exec.run(s, fns);
  for (int w = 0; w < 6; ++w) {
    EXPECT_EQ(checks_passed[static_cast<std::size_t>(w)].load(), 3)
        << "worker " << w;
  }
}

TEST(Executor, SingleGroupMultiTaskLayerHasNullOrth) {
  // One group with several tasks assigned back-to-back: num_groups == 1, so
  // no orthogonal communicator exists for any of them.
  core::TaskGraph g;
  for (int i = 0; i < 3; ++i) {
    g.add_task(core::MTask("t" + std::to_string(i), 1.0));
  }
  const sched::LayeredSchedule s = manual_layer(g, 4, {4}, {0, 0, 0});
  std::atomic<int> null_orths{0};
  std::vector<TaskFn> fns(3);
  for (int i = 0; i < 3; ++i) {
    fns[static_cast<std::size_t>(i)] = [&](ExecContext& ctx) {
      EXPECT_EQ(ctx.num_groups, 1);
      if (ctx.orth == nullptr) null_orths++;
    };
  }
  Executor exec(4);
  exec.run(s, fns);
  EXPECT_EQ(null_orths.load(), 12);  // 3 tasks x 4 group members
}

TEST(Executor, FaultInjectionPreservesSemantics) {
  // Aggressive delays and yield storms must not change what executes or
  // what the collectives compute.
  core::TaskGraph g;
  for (int i = 0; i < 3; ++i) {
    g.add_task(core::MTask("t" + std::to_string(i), 1.0));
  }
  const sched::LayeredSchedule s = manual_layer(g, 6, {2, 2, 2}, {0, 1, 2});
  FaultOptions faults;
  faults.task_delays = true;
  faults.yield_storm = true;
  faults.seed = 0xFA117;
  faults.max_delay_us = 50;
  Executor exec(6, faults);
  EXPECT_TRUE(exec.fault_injector().enabled());
  std::atomic<int> good{0};
  std::vector<TaskFn> fns(3);
  for (int i = 0; i < 3; ++i) {
    fns[static_cast<std::size_t>(i)] = [&](ExecContext& ctx) {
      const double sum = ctx.comm->allreduce_sum(ctx.group_rank, 1.0);
      if (sum == static_cast<double>(ctx.group_size)) good++;
    };
  }
  for (int round = 0; round < 5; ++round) {
    exec.run(s, fns);
  }
  EXPECT_EQ(good.load(), 5 * 6);
}

TEST(Executor, FaultInjectionIsAccountedInMetrics) {
  // Injected perturbations must not be mystery gaps: the injector reports
  // how often it fired and how much delay it added through obs metrics.
  const std::uint64_t injections_before =
      obs::metrics().counter("rt.fault.injections").value();
  const std::uint64_t delay_before =
      obs::metrics().counter("rt.fault.delay_us").value();

  core::TaskGraph g;
  for (int i = 0; i < 3; ++i) {
    g.add_task(core::MTask("t" + std::to_string(i), 1.0));
  }
  const sched::LayeredSchedule s = manual_layer(g, 6, {2, 2, 2}, {0, 1, 2});
  FaultOptions faults;
  faults.task_delays = true;
  faults.seed = 0xFA117;
  faults.max_delay_us = 50;
  Executor exec(6, faults);
  std::vector<TaskFn> fns(3);
  for (int i = 0; i < 3; ++i) {
    fns[static_cast<std::size_t>(i)] = [](ExecContext& ctx) {
      ctx.comm->barrier(ctx.group_rank);
    };
  }
  for (int round = 0; round < 5; ++round) {
    exec.run(s, fns);
  }

  // 5 rounds x 6 workers x (prologue + 2 per-task sites) with a ~1/3 firing
  // probability: deterministic given the seed, and far from zero.
  const std::uint64_t injections =
      obs::metrics().counter("rt.fault.injections").value() - injections_before;
  const std::uint64_t delay_us =
      obs::metrics().counter("rt.fault.delay_us").value() - delay_before;
  EXPECT_GT(injections, 0u);
  EXPECT_GT(delay_us, 0u);
}

TEST(FaultOptionsEnv, ParsesToggleList) {
  FaultOptions options = FaultOptions::from_env();  // env unset: disabled
  EXPECT_FALSE(options.any());
}

TEST(Executor, NoOrthogonalCommWithSingleGroup) {
  core::TaskGraph g;
  g.add_task(core::MTask("t", 1.0));
  const cost::CostModel cm(machine());
  const sched::LayeredSchedule s = sched::LayerScheduler(cm).schedule(g, 4);
  std::vector<TaskFn> fns(1);
  fns[0] = [](ExecContext& ctx) { EXPECT_EQ(ctx.orth, nullptr); };
  Executor exec(4);
  exec.run(s, fns);
}

TEST(Executor, SizeMismatchThrows) {
  core::TaskGraph g;
  g.add_task(core::MTask("t", 1.0));
  const cost::CostModel cm(machine());
  const sched::LayeredSchedule s = sched::LayerScheduler(cm).schedule(g, 4);
  Executor exec(8);
  EXPECT_THROW(exec.run(s, std::vector<TaskFn>(1)), std::invalid_argument);
}

TEST(Executor, EmptyFunctionsAreSkipped) {
  core::TaskGraph g;
  g.add_task(core::MTask("t", 1.0));
  const cost::CostModel cm(machine());
  const sched::LayeredSchedule s = sched::LayerScheduler(cm).schedule(g, 2);
  Executor exec(2);
  EXPECT_NO_THROW(exec.run(s, std::vector<TaskFn>(1)));  // default (empty) fn
}

}  // namespace
}  // namespace ptask::rt
