// Tests for the baseline schedulers: CPA, CPR, the data-parallel scheme,
// and the shared moldable list-scheduling machinery.

#include <gtest/gtest.h>

#include "ptask/ode/graph_gen.hpp"
#include "ptask/sched/cpa_scheduler.hpp"
#include "ptask/sched/cpr_scheduler.hpp"
#include "ptask/sched/data_parallel.hpp"
#include "ptask/sched/layer_scheduler.hpp"
#include "ptask/sched/moldable.hpp"
#include "ptask/sched/validation.hpp"

namespace ptask::sched {
namespace {

arch::Machine machine(int nodes = 32) {
  arch::MachineSpec spec = arch::chic();
  spec.num_nodes = nodes;
  return arch::Machine(spec);
}

core::TaskGraph fork_join(int width, double work = 1.0e10) {
  core::TaskGraph g;
  const core::TaskId source = g.add_task(core::MTask("src", work));
  const core::TaskId sink = g.add_task(core::MTask("sink", work));
  for (int i = 0; i < width; ++i) {
    core::MTask t("mid" + std::to_string(i), work);
    t.add_comm(core::CollectiveOp{core::CollectiveKind::Allgather,
                                  core::CommScope::Group, 1u << 20, 2});
    const core::TaskId id = g.add_task(std::move(t));
    g.add_edge(source, id);
    g.add_edge(id, sink);
  }
  return g;
}

TEST(TaskTimeTable, MatchesCostModel) {
  const arch::Machine m = machine();
  const cost::CostModel cm(m);
  const core::TaskGraph g = fork_join(4);
  const TaskTimeTable table(g, cm, 16);
  for (core::TaskId id = 0; id < g.num_tasks(); ++id) {
    for (int p : {1, 4, 16}) {
      EXPECT_DOUBLE_EQ(table.time(id, p),
                       cm.symbolic_task_time(g.task(id), p,
                                             std::max(1, 16 / p), 16));
    }
  }
  EXPECT_THROW(table.time(0, 0), std::out_of_range);
  EXPECT_THROW(table.time(0, 17), std::out_of_range);
}

TEST(ListSchedule, RespectsAllocationAndPrecedence) {
  const arch::Machine m = machine();
  const cost::CostModel cm(m);
  const core::TaskGraph g = fork_join(4);
  const TaskTimeTable table(g, cm, 8);
  const std::vector<int> allocation(static_cast<std::size_t>(g.num_tasks()), 2);
  const GanttSchedule gantt = list_schedule(g, allocation, table);
  const ValidationReport report = validate(gantt, g);
  EXPECT_TRUE(report.ok()) << report.errors.front();
  for (const TaskSlot& slot : gantt.slots) {
    EXPECT_EQ(slot.num_cores(), 2);
  }
  // Four 2-core middle tasks fit concurrently on 8 cores: the middle phase
  // takes one task's time, not four.
  const double mid_time = table.time(2, 2);
  const TaskSlot& src = gantt.slots[0];
  const TaskSlot& sink = gantt.slots[1];
  EXPECT_NEAR(sink.start - src.finish, mid_time, mid_time * 0.01);
}

TEST(ListSchedule, SerializesWhenAllocationsExceedMachine) {
  const arch::Machine m = machine();
  const cost::CostModel cm(m);
  const core::TaskGraph g = fork_join(4);
  const TaskTimeTable table(g, cm, 8);
  // Width-4 middle layer with 8-core allocations: must serialize 4x.
  std::vector<int> allocation(static_cast<std::size_t>(g.num_tasks()), 8);
  const GanttSchedule gantt = list_schedule(g, allocation, table);
  EXPECT_TRUE(validate(gantt, g).ok());
  const double mid_time = table.time(2, 8);
  const TaskSlot& src = gantt.slots[0];
  const TaskSlot& sink = gantt.slots[1];
  EXPECT_NEAR(sink.start - src.finish, 4.0 * mid_time, mid_time * 0.05);
}

TEST(Cpa, ProducesValidSchedules) {
  const arch::Machine m = machine();
  const cost::CostModel cm(m);
  const CpaScheduler cpa(cm);
  for (int cores : {4, 16, 64}) {
    const CpaResult result = cpa.schedule(fork_join(6), cores);
    EXPECT_TRUE(validate(result.schedule, fork_join(6)).ok()) << cores;
    for (int a : result.allocation) {
      EXPECT_GE(a, 1);
      EXPECT_LE(a, cores);
    }
  }
}

TEST(Cpa, OverAllocatesIndependentStageTasks) {
  // The paper's PABM observation (Fig. 13 left): CPA's allocation phase
  // assigns the K independent stage tasks more cores in total than exist,
  // so they cannot all run concurrently.
  ode::SolverGraphSpec spec;
  spec.method = ode::Method::PABM;
  spec.n = 1 << 16;
  spec.stages = 8;
  spec.iterations = 2;
  const core::TaskGraph g = spec.step_graph();
  const arch::Machine m = machine(16);
  const cost::CostModel cm(m);
  const CpaResult result = CpaScheduler(cm).schedule(g, 64);
  int stage_total = 0;
  for (core::TaskId id = 0; id < g.num_tasks(); ++id) {
    if (g.task(id).name().find("stage") != std::string::npos) {
      stage_total += result.allocation[static_cast<std::size_t>(id)];
    }
  }
  EXPECT_GT(stage_total, 64);
}

TEST(Mcpa, LevelBoundPreventsOverAllocation) {
  // Same setting as Cpa.OverAllocatesIndependentStageTasks: MCPA's
  // level-width bound must keep the 8 stage allocations within the machine.
  ode::SolverGraphSpec spec;
  spec.method = ode::Method::PABM;
  spec.n = 1 << 16;
  spec.stages = 8;
  spec.iterations = 2;
  const core::TaskGraph g = spec.step_graph();
  const arch::Machine m = machine(16);
  const cost::CostModel cm(m);
  const CpaResult result = McpaScheduler(cm).schedule(g, 64);
  int stage_total = 0;
  for (core::TaskId id = 0; id < g.num_tasks(); ++id) {
    if (g.task(id).name().find("stage") != std::string::npos) {
      stage_total += result.allocation[static_cast<std::size_t>(id)];
    }
  }
  EXPECT_LE(stage_total, 64);
  EXPECT_TRUE(validate(result.schedule, g).ok());
}

TEST(Mcpa, BeatsCpaOnWideStageLayers) {
  ode::SolverGraphSpec spec;
  spec.method = ode::Method::PABM;
  spec.n = 1 << 16;
  spec.stages = 8;
  spec.iterations = 2;
  const core::TaskGraph g = spec.step_graph();
  const arch::Machine m = machine(16);
  const cost::CostModel cm(m);
  const double cpa = CpaScheduler(cm).schedule(g, 64).schedule.makespan;
  const double mcpa = McpaScheduler(cm).schedule(g, 64).schedule.makespan;
  EXPECT_LT(mcpa, cpa);
}

TEST(Mcpa, ValidAcrossCoreCounts) {
  const arch::Machine m = machine();
  const cost::CostModel cm(m);
  const core::TaskGraph g = fork_join(6);
  for (int cores : {4, 16, 64}) {
    const CpaResult result = McpaScheduler(cm).schedule(g, cores);
    EXPECT_TRUE(validate(result.schedule, g).ok()) << cores;
  }
}

TEST(Cpr, ProducesValidSchedules) {
  const arch::Machine m = machine();
  const cost::CostModel cm(m);
  const CprScheduler cpr(cm);
  const core::TaskGraph g = fork_join(6);
  for (int cores : {4, 16}) {
    const CprResult result = cpr.schedule(g, cores);
    EXPECT_TRUE(validate(result.schedule, g).ok()) << cores;
  }
}

TEST(Cpr, NeverWorseThanAllOnesAllocation) {
  const arch::Machine m = machine();
  const cost::CostModel cm(m);
  const core::TaskGraph g = fork_join(6);
  const int cores = 16;
  const TaskTimeTable table(g, cm, cores);
  const std::vector<int> ones(static_cast<std::size_t>(g.num_tasks()), 1);
  const double baseline = list_schedule(g, ones, table).makespan;
  const CprResult result = CprScheduler(cm).schedule(g, cores);
  EXPECT_LE(result.schedule.makespan, baseline + 1e-12);
}

TEST(Cpr, InflatesLongChains) {
  // The paper's EPOL observation (Fig. 13 right): CPR keeps feeding cores to
  // the tasks of the longest chain, pushing them towards full width.
  ode::SolverGraphSpec spec;
  spec.method = ode::Method::EPOL;
  spec.n = 1 << 16;
  spec.stages = 8;
  // Use the contracted graph (chains as single nodes) as CPR input, like the
  // comparison in the paper.
  const core::ChainContraction cc =
      core::contract_linear_chains(spec.step_graph());
  const arch::Machine m = machine(16);
  const cost::CostModel cm(m);
  const CprResult result = CprScheduler(cm).schedule(cc.contracted, 64);
  // Find the longest chain (8 micro steps) and check it got a large share.
  int max_alloc = 0;
  for (core::TaskId id = 0; id < cc.contracted.num_tasks(); ++id) {
    max_alloc = std::max(max_alloc,
                         result.allocation[static_cast<std::size_t>(id)]);
  }
  EXPECT_GE(max_alloc, 16);
}

TEST(DataParallel, OneGroupPerLayer) {
  ode::SolverGraphSpec spec;
  spec.method = ode::Method::IRK;
  spec.n = 1 << 14;
  spec.stages = 4;
  spec.iterations = 2;
  const core::TaskGraph g = spec.step_graph();
  const arch::Machine m = machine();
  const cost::CostModel cm(m);
  const LayeredSchedule s = DataParallelScheduler(cm).schedule(g, 32);
  for (const ScheduledLayer& layer : s.layers) {
    EXPECT_EQ(layer.num_groups(), 1);
    EXPECT_EQ(layer.group_sizes[0], 32);
  }
  EXPECT_TRUE(validate(s, g).ok());
}

TEST(DataParallel, MakespanIsSumOfFullWidthTasks) {
  core::TaskGraph g;
  g.add_task(core::MTask("a", 1.0e9));
  g.add_task(core::MTask("b", 3.0e9));
  const arch::Machine m = machine();
  const cost::CostModel cm(m);
  const LayeredSchedule s = DataParallelScheduler(cm).schedule(g, 16);
  const double expected = cm.symbolic_task_time(g.task(0), 16, 1, 16) +
                          cm.symbolic_task_time(g.task(1), 16, 1, 16);
  EXPECT_DOUBLE_EQ(s.predicted_makespan, expected);
}

TEST(Baselines, LayerSchedulerBeatsCpaOnStageGraphs) {
  // End-to-end comparison under identical symbolic costs: for PABM-style
  // wide layers of communication-heavy tasks the layer scheduler's disjoint
  // groups beat CPA's over-allocation.
  ode::SolverGraphSpec spec;
  spec.method = ode::Method::PABM;
  spec.n = 1 << 16;
  spec.stages = 8;
  spec.iterations = 2;
  const core::TaskGraph g = spec.step_graph();
  const arch::Machine m = machine(16);
  const cost::CostModel cm(m);

  const LayeredSchedule layered = LayerScheduler(cm).schedule(g, 64);
  const CpaResult cpa = CpaScheduler(cm).schedule(g, 64);
  EXPECT_LT(layered.predicted_makespan, cpa.schedule.makespan);
}

}  // namespace
}  // namespace ptask::sched
