// Randomized scheduling fuzz harness: seeded random instances (synthetic
// families plus the paper's ODE and NPB graph generators) pushed through
// every scheduler and cross-checked with the differential oracles of
// ptask::fuzz -- structural validation, makespan agreement between
// independent code paths, discrete-event replay, and schedule-independent
// executor results.
//
// Reproduction: every failure message carries the instance seed; re-run with
//   PTASK_FUZZ_SEED=<seed> PTASK_FUZZ_INSTANCES=1 ./fuzz_scheduler_test
// to regenerate exactly that instance first.  PTASK_FUZZ_INSTANCES scales
// the sweep (CI sanitizer jobs use a reduced count).

#include <gtest/gtest.h>

#include <cstdlib>
#include <iostream>
#include <limits>
#include <map>
#include <set>
#include <string>

#include "ptask/arch/machine.hpp"
#include "ptask/cost/cost_model.hpp"
#include "ptask/fuzz/generator.hpp"
#include "ptask/fuzz/oracles.hpp"
#include "ptask/fuzz/rng.hpp"
#include "ptask/sched/portfolio.hpp"
#include "ptask/sched/registry.hpp"
#include "ptask/sched/schedule.hpp"

namespace ptask::fuzz {
namespace {

std::uint64_t base_seed() { return seed_from_env(kDefaultFuzzSeed); }

int instance_count() {
  if (const char* env = std::getenv("PTASK_FUZZ_INSTANCES");
      env != nullptr && *env != '\0') {
    const long value = std::strtol(env, nullptr, 10);
    if (value > 0) return static_cast<int>(value);
  }
  return 200;
}

/// One announcement per binary run so CI logs always show how to reproduce.
class SeedAnnouncer : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    std::cerr << "[fuzz] base seed " << base_seed() << " ("
              << instance_count()
              << " instances; override with PTASK_FUZZ_SEED / "
                 "PTASK_FUZZ_INSTANCES)\n";
  }
};

using FuzzScheduler = SeedAnnouncer;

TEST_F(FuzzScheduler, RandomInstancesSatisfyAllOracles) {
  const std::uint64_t base = base_seed();
  const int count = instance_count();
  int schedules = 0;
  int executor_runs = 0;
  int lints = 0;
  int mutations = 0;
  for (int i = 0; i < count; ++i) {
    const Instance instance = random_instance(substream(base,
        static_cast<std::uint64_t>(i)));
    OracleOptions options;
    // Replaying the simulation twice is the costliest oracle; sample it.
    options.check_sim_determinism = (i % 8 == 0);
    const OracleReport report = check_instance(instance, options);
    EXPECT_TRUE(report.ok())
        << "instance " << i << " (seed " << instance.seed << ", "
        << instance.name << "):\n"
        << report.summary()
        << "reproduce with PTASK_FUZZ_SEED=" << base;
    schedules += report.schedules_checked;
    executor_runs += report.executor_runs;
    lints += report.lints_checked;
    mutations += report.lint_mutations;
  }
  // The sweep must actually exercise the oracles (9 scheduler outputs --
  // the 5 registry strategies, 3 non-default layer pass configurations and
  // the portfolio -- 4 executor runs, one lint-clean pass, and two lint
  // mutations per instance).
  EXPECT_GE(schedules, count * 9);
  EXPECT_GE(executor_runs, count * 4);
  EXPECT_GE(lints, count);
  EXPECT_GE(mutations, count * 2);
}

TEST_F(FuzzScheduler, PortfolioDominatesIndividualStrategies) {
  // The portfolio auto-scheduler scores every registered strategy and keeps
  // the best; under the default symbolic-makespan metric its winner can
  // never be worse than the best individual strategy run directly against
  // the registry.  CI runs this test standalone with a raised instance
  // count (gtest filter '*Portfolio*').
  const std::uint64_t base = substream(base_seed(), 0x90F0);
  const int count = std::max(16, instance_count() / 2);
  sched::SchedulerRegistry& registry = sched::SchedulerRegistry::instance();
  for (int i = 0; i < count; ++i) {
    const Instance instance =
        random_instance(substream(base, static_cast<std::uint64_t>(i)));
    const arch::Machine machine(instance.machine);
    const cost::CostModel cost(machine);

    double best = std::numeric_limits<double>::infinity();
    std::size_t individuals = 0;
    for (const std::string& name : registry.names()) {
      // Match the portfolio's default sweep: everything but itself and the
      // incremental alias of the layer pipeline.
      if (name == "portfolio" || name == "incremental") continue;
      ++individuals;
      try {
        const sched::Schedule s = registry.make(name, cost)->run(
            instance.graph, instance.total_cores);
        best = std::min(best, s.makespan());
      } catch (const std::exception&) {
        // The portfolio skips failing strategies too; dominance is over the
        // ones that produce a schedule.
      }
    }
    ASSERT_GE(individuals, 5u);

    const sched::PortfolioScheduler portfolio(cost);
    sched::PortfolioReport report;
    const sched::Schedule winner =
        portfolio.run(instance.graph, instance.total_cores, report);
    EXPECT_LE(winner.makespan(), best * (1.0 + 1e-9) + 1e-12)
        << "instance " << i << " (seed " << instance.seed << ", "
        << instance.name << "): portfolio winner '" << winner.strategy
        << "' lost to an individual strategy; reproduce with "
        << "PTASK_FUZZ_SEED=" << base_seed();
    EXPECT_EQ(report.scores.size(), individuals);
    EXPECT_EQ(winner.strategy, report.winner);
  }
}

TEST_F(FuzzScheduler, LintOracleCoversEveryGraphFamily) {
  // The lint mutations have family-specific fallback paths (graphs without
  // parameters, graphs without basic edges); require both mutation checks to
  // engage for every family so no fallback silently stops running.
  const std::uint64_t base = base_seed();
  std::map<GraphFamily, int> mutations_by_family;
  for (int i = 0; i < 64; ++i) {
    const Instance instance =
        random_instance(substream(base, static_cast<std::uint64_t>(i)));
    OracleOptions options;
    options.check_executor = false;  // only the lint oracle matters here
    const OracleReport report = check_instance(instance, options);
    EXPECT_TRUE(report.ok())
        << "instance " << i << " (seed " << instance.seed << ", "
        << instance.name << "):\n"
        << report.summary()
        << "reproduce with PTASK_FUZZ_SEED=" << base;
    mutations_by_family[instance.family] += report.lint_mutations;
  }
  ASSERT_EQ(mutations_by_family.size(), 5u) << "family mix degenerated";
  for (const auto& [family, count] : mutations_by_family) {
    EXPECT_GE(count, 2) << "lint mutations did not engage for family "
                        << to_string(family);
  }
}

TEST_F(FuzzScheduler, CertifierOracleCertifiesEveryFamilyAndCatchesCorruption) {
  // The independent-certifier oracle (oracle 7): every candidate schedule of
  // every registry strategy must certify clean across all five graph
  // families (zero false positives), and the seeded corruption classes --
  // precedence swap, core overlap, oversubscribed group, makespan edit,
  // lower-bound violation -- must each be caught by their distinct PTC code
  // (check_certifier_mutations fails the oracle otherwise).  CI runs this
  // test standalone with a raised instance count (gtest filter '*Certifier*').
  const std::uint64_t base = substream(base_seed(), 0xCE27);
  const int count = instance_count();
  std::map<GraphFamily, int> certificates_by_family;
  int mutations = 0;
  for (int i = 0; i < count; ++i) {
    const Instance instance =
        random_instance(substream(base, static_cast<std::uint64_t>(i)));
    OracleOptions options;
    options.check_executor = false;       // certification is the subject here
    options.check_sim_determinism = false;
    const OracleReport report = check_instance(instance, options);
    EXPECT_TRUE(report.ok())
        << "instance " << i << " (seed " << instance.seed << ", "
        << instance.name << "):\n"
        << report.summary()
        << "reproduce with PTASK_FUZZ_SEED=" << base_seed();
    certificates_by_family[instance.family] += report.certificates_checked;
    mutations += report.certifier_mutations;
  }
  ASSERT_EQ(certificates_by_family.size(), 5u) << "family mix degenerated";
  for (const auto& [family, certified] : certificates_by_family) {
    // Every candidate schedule (at least the 9 per instance) was certified.
    EXPECT_GE(certified, 9) << "certifier did not engage for family "
                            << to_string(family);
  }
  // The makespan-edit corruption applies to every instance; most instances
  // support all five classes.
  EXPECT_GE(mutations, count * 2);
}

TEST_F(FuzzScheduler, EveryGraphFamilyIsGenerated) {
  const std::uint64_t base = base_seed();
  std::set<GraphFamily> seen;
  for (int i = 0; i < 64 && seen.size() < 5; ++i) {
    seen.insert(
        random_instance(substream(base, static_cast<std::uint64_t>(i)))
            .family);
  }
  EXPECT_EQ(seen.size(), 5u) << "family mix degenerated";
}

TEST_F(FuzzScheduler, InstancesAreReproducibleFromTheirSeed) {
  const std::uint64_t seed = substream(base_seed(), 7);
  const Instance a = random_instance(seed);
  const Instance b = random_instance(seed);
  EXPECT_EQ(a.name, b.name);
  ASSERT_EQ(a.graph.num_tasks(), b.graph.num_tasks());
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
  for (core::TaskId id = 0; id < a.graph.num_tasks(); ++id) {
    EXPECT_EQ(a.graph.task(id).name(), b.graph.task(id).name());
    EXPECT_EQ(a.graph.task(id).work_flop(), b.graph.task(id).work_flop());
  }
  EXPECT_EQ(a.total_cores, b.total_cores);
}

TEST_F(FuzzScheduler, FaultInjectionPreservesExecutorResults) {
  // A reduced sweep with aggressive interleaving perturbation: randomized
  // per-task delays plus yield storms.  Any ordering bug in the runtime
  // surfaces as a result mismatch (or as a race under the TSan CI job).
  const std::uint64_t base = substream(base_seed(), 0xFA01);
  const int count = std::max(8, instance_count() / 10);
  for (int i = 0; i < count; ++i) {
    const Instance instance =
        random_instance(substream(base, static_cast<std::uint64_t>(i)));
    OracleOptions options;
    options.executor_faults.task_delays = true;
    options.executor_faults.yield_storm = true;
    options.executor_faults.seed = instance.seed;
    options.executor_faults.max_delay_us = 50;
    const OracleReport report = check_instance(instance, options);
    EXPECT_TRUE(report.ok())
        << "instance " << i << " (seed " << instance.seed << ", "
        << instance.name << "):\n"
        << report.summary()
        << "reproduce with PTASK_FUZZ_SEED=" << base_seed();
  }
}

}  // namespace
}  // namespace ptask::fuzz
