// Tests for the collective algorithms and the analytic link model.

#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <set>

#include "ptask/net/collectives.hpp"
#include "ptask/net/link_model.hpp"

namespace ptask::net {
namespace {

// --- structural checks on the algorithms ---

// Simulates data propagation through a schedule: after a bcast every rank
// must hold the root's datum.
TEST(BinomialBcast, ReachesEveryRank) {
  for (int n : {1, 2, 3, 5, 8, 13, 32}) {
    for (int root : {0, n / 2, n - 1}) {
      const MessageSchedule schedule = binomial_bcast(n, root, 100);
      std::set<int> holders{root};
      for (const Round& round : schedule) {
        std::set<int> new_holders;
        for (const Message& m : round.messages) {
          EXPECT_TRUE(holders.count(m.src))
              << "rank " << m.src << " sends before holding the data";
          new_holders.insert(m.dst);
        }
        holders.insert(new_holders.begin(), new_holders.end());
      }
      EXPECT_EQ(static_cast<int>(holders.size()), n) << "n=" << n;
    }
  }
}

TEST(BinomialBcast, LogarithmicRoundCount) {
  EXPECT_EQ(binomial_bcast(1, 0, 8).size(), 0u);
  EXPECT_EQ(binomial_bcast(2, 0, 8).size(), 1u);
  EXPECT_EQ(binomial_bcast(8, 0, 8).size(), 3u);
  EXPECT_EQ(binomial_bcast(9, 0, 8).size(), 4u);
  EXPECT_EQ(binomial_bcast(1024, 0, 8).size(), 10u);
}

TEST(BinomialBcast, MessageCountIsNminus1) {
  for (int n : {2, 7, 16, 33}) {
    std::size_t messages = 0;
    for (const Round& r : binomial_bcast(n, 0, 1)) messages += r.messages.size();
    EXPECT_EQ(messages, static_cast<std::size_t>(n - 1));
  }
}

TEST(RingAllgather, EveryRankEndsWithAllBlocks) {
  for (int n : {2, 3, 4, 7, 16}) {
    const MessageSchedule schedule = ring_allgather(n, 64);
    EXPECT_EQ(schedule.size(), static_cast<std::size_t>(n - 1));
    // Track block ownership: rank r starts with block r; each round passes
    // the newest block right.
    std::vector<std::set<int>> blocks(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) blocks[static_cast<std::size_t>(r)] = {r};
    for (const Round& round : schedule) {
      EXPECT_EQ(round.messages.size(), static_cast<std::size_t>(n));
      std::vector<int> incoming(static_cast<std::size_t>(n), -1);
      for (const Message& m : round.messages) {
        EXPECT_EQ(m.dst, (m.src + 1) % n) << "ring sends to right neighbour";
        incoming[static_cast<std::size_t>(m.dst)] = m.src;
      }
      // Each rank relays the block it received most recently; any block the
      // sender holds that the receiver lacks works for the coverage proof.
      std::vector<std::set<int>> next = blocks;
      for (int dst = 0; dst < n; ++dst) {
        const int src = incoming[static_cast<std::size_t>(dst)];
        for (int b : blocks[static_cast<std::size_t>(src)]) {
          next[static_cast<std::size_t>(dst)].insert(b);
        }
      }
      blocks = std::move(next);
    }
    for (int r = 0; r < n; ++r) {
      EXPECT_EQ(blocks[static_cast<std::size_t>(r)].size(),
                static_cast<std::size_t>(n));
    }
  }
}

TEST(RecursiveDoublingAllgather, DoublesPayloadPerRound) {
  const MessageSchedule schedule = recursive_doubling_allgather(8, 100);
  ASSERT_EQ(schedule.size(), 3u);
  EXPECT_EQ(schedule[0].messages.front().bytes, 100u);
  EXPECT_EQ(schedule[1].messages.front().bytes, 200u);
  EXPECT_EQ(schedule[2].messages.front().bytes, 400u);
  EXPECT_THROW(recursive_doubling_allgather(6, 100), std::invalid_argument);
}

TEST(Allgather, SelectsAlgorithmBySize) {
  // Small total volume + power-of-two ranks -> recursive doubling (log
  // rounds); large -> ring (n-1 rounds).
  EXPECT_EQ(allgather(8, 16).size(), 3u);
  EXPECT_EQ(allgather(8, 1 << 20).size(), 7u);
  // Non power of two always rings.
  EXPECT_EQ(allgather(6, 16).size(), 5u);
  EXPECT_TRUE(allgather(1, 100).empty());
}

TEST(Allgather, TotalVolumeMatchesRingFormula) {
  const int n = 5;
  const std::size_t per_rank = 1000;
  // Ring: every rank sends n-1 blocks.
  EXPECT_EQ(schedule_bytes(ring_allgather(n, per_rank)),
            per_rank * static_cast<std::size_t>(n) *
                static_cast<std::size_t>(n - 1));
}

TEST(Allreduce, PowerOfTwoUsesRecursiveDoubling) {
  EXPECT_EQ(allreduce(8, 64).size(), 3u);
  // Non power of two: reduce + bcast.
  EXPECT_EQ(allreduce(6, 64).size(), 6u);
  EXPECT_TRUE(allreduce(1, 64).empty());
}

TEST(Barrier, HasZeroPayload) {
  for (const Round& r : barrier(8)) {
    for (const Message& m : r.messages) EXPECT_EQ(m.bytes, 0u);
  }
}

TEST(RingExchange, TwoRoundsBothDirections) {
  const MessageSchedule schedule = ring_exchange(5, 77);
  ASSERT_EQ(schedule.size(), 2u);
  for (const Message& m : schedule[0].messages) {
    EXPECT_EQ(m.dst, (m.src + 1) % 5);
    EXPECT_EQ(m.bytes, 77u);
  }
  for (const Message& m : schedule[1].messages) {
    EXPECT_EQ(m.dst, (m.src + 4) % 5);
  }
  EXPECT_TRUE(ring_exchange(1, 77).empty());
}

TEST(RedistributionRounds, NoRankSendsOrReceivesTwicePerRound) {
  std::vector<Message> transfers;
  for (int s = 0; s < 4; ++s) {
    for (int d = 0; d < 4; ++d) transfers.push_back({s, d + 4, 100});
  }
  const MessageSchedule schedule = redistribution_rounds(transfers);
  std::size_t placed = 0;
  for (const Round& round : schedule) {
    std::set<int> senders, receivers;
    for (const Message& m : round.messages) {
      EXPECT_TRUE(senders.insert(m.src).second);
      EXPECT_TRUE(receivers.insert(m.dst).second);
      ++placed;
    }
  }
  EXPECT_EQ(placed, transfers.size());
  // 4x4 bipartite all-to-all needs exactly 4 rounds.
  EXPECT_EQ(schedule.size(), 4u);
}

// --- link model pricing ---

class LinkModelTest : public ::testing::Test {
 protected:
  LinkModelTest() : machine_(make_machine()), model_(machine_) {}
  static arch::Machine make_machine() {
    arch::MachineSpec spec = arch::chic();
    spec.num_nodes = 8;
    return arch::Machine(spec);
  }
  arch::Machine machine_;
  LinkModel model_;
};

TEST_F(LinkModelTest, IntraNodeRoundHasNoNicContention) {
  // Two messages within a node in one round cost one transfer (concurrent).
  Round round;
  round.messages = {{0, 1, 1 << 20}, {2, 3, 1 << 20}};
  const std::vector<int> placement{0, 1, 2, 3};
  const double t = model_.round_time(round, placement);
  const double single =
      machine_.link(arch::CommLevel::SameProcessor).transfer_time(1 << 20);
  EXPECT_LE(t, single * 1.5);  // same-node link is slower but not serialized
}

TEST_F(LinkModelTest, NicSerializesInterNodeTraffic) {
  // Four concurrent messages leaving node 0 share its NIC: about 4x one
  // transfer.
  Round round;
  const std::size_t bytes = 1 << 20;
  round.messages = {{0, 4, bytes}, {1, 5, bytes}, {2, 6, bytes}, {3, 7, bytes}};
  // Ranks 0-3 on node 0, ranks 4-7 spread over nodes 1-4 (flat ids).
  const std::vector<int> placement{0, 1, 2, 3, 4, 8, 12, 16};
  const double t = model_.round_time(round, placement);
  const double single =
      machine_.link(arch::CommLevel::InterNode).transfer_time(bytes);
  EXPECT_GT(t, 3.5 * single);
  EXPECT_LT(t, 4.5 * single);
}

TEST_F(LinkModelTest, SelfMessagesAreFree) {
  Round round;
  round.messages = {{0, 0, 1 << 30}};
  const std::vector<int> placement{0};
  EXPECT_DOUBLE_EQ(model_.round_time(round, placement), 0.0);
}

TEST_F(LinkModelTest, ScheduleTimeIsSumOfRounds) {
  const MessageSchedule schedule = ring_allgather(4, 4096);
  std::vector<int> placement{0, 1, 2, 3};
  double sum = 0.0;
  for (const Round& r : schedule) sum += model_.round_time(r, placement);
  EXPECT_DOUBLE_EQ(model_.schedule_time(schedule, placement), sum);
}

TEST_F(LinkModelTest, TrafficStatsClassifyLevels) {
  Round round;
  round.messages = {{0, 1, 100}, {0, 2, 200}, {0, 3, 400}};
  const std::vector<int> placement{0, 1, 2, 4};  // proc, node, inter
  TrafficStats stats;
  model_.round_time(round, placement, &stats);
  EXPECT_EQ(stats.bytes_same_processor, 100u);
  EXPECT_EQ(stats.bytes_same_node, 200u);
  EXPECT_EQ(stats.bytes_inter_node, 400u);
  EXPECT_EQ(stats.total_bytes(), 700u);
  EXPECT_EQ(stats.messages, 3u);
}

TEST_F(LinkModelTest, ConsecutivePlacementBeatsScatteredForRingAllgather) {
  // The headline mechanism of Fig. 14 (left): with 4 cores per node, a
  // consecutive placement keeps 3 of 4 ring hops inside nodes, while a
  // scattered placement makes every hop inter-node AND piles 4 concurrent
  // transfers onto each NIC.
  const int ranks = 32;
  const MessageSchedule schedule = ring_allgather(ranks, 256 * 1024);
  std::vector<int> consecutive(ranks), scattered(ranks);
  std::iota(consecutive.begin(), consecutive.end(), 0);
  for (int r = 0; r < ranks; ++r) {
    scattered[static_cast<std::size_t>(r)] = (r % 8) * 4 + r / 8;
  }
  const double t_cons = model_.schedule_time(schedule, consecutive);
  const double t_scat = model_.schedule_time(schedule, scattered);
  EXPECT_LT(t_cons * 2.0, t_scat);
}

TEST_F(LinkModelTest, ConcurrentSchedulesShareTheWire) {
  // Two group allgathers, each confined to its own node: no interference.
  const MessageSchedule ag = ring_allgather(4, 64 * 1024);
  const std::vector<MessageSchedule> schedules{ag, ag};
  const std::vector<std::vector<int>> intra_placements{{0, 1, 2, 3},
                                                       {4, 5, 6, 7}};
  const double t_intra =
      model_.concurrent_schedule_time(schedules, intra_placements);
  // The same two allgathers with both groups scattered over the same two
  // nodes: all traffic inter-node and contending.
  const std::vector<std::vector<int>> cross_placements{{0, 4, 1, 5},
                                                       {2, 6, 3, 7}};
  const double t_cross =
      model_.concurrent_schedule_time(schedules, cross_placements);
  EXPECT_LT(t_intra, t_cross);
}

TEST(UniformCosts, ClosedFormsScaleAsExpected) {
  const arch::LinkParams link{1.0e-6, 1.0e9};
  EXPECT_DOUBLE_EQ(bcast_time_uniform(1, 100, link), 0.0);
  EXPECT_DOUBLE_EQ(bcast_time_uniform(8, 0, link), 3.0e-6);
  // Ring allgather: (q-1) rounds of the per-rank block.
  EXPECT_DOUBLE_EQ(allgather_time_uniform(5, 1000, link),
                   4.0 * (1.0e-6 + 1000.0 / 1.0e9));
  EXPECT_DOUBLE_EQ(barrier_time_uniform(16, link), 4.0e-6);
  EXPECT_DOUBLE_EQ(exchange_time_uniform(9, 500, link),
                   2.0 * (1.0e-6 + 500.0 / 1.0e9));
  EXPECT_GT(allreduce_time_uniform(8, 100, link), 0.0);
}

}  // namespace
}  // namespace ptask::net
