// Tests for the observability subsystem (ptask::obs): metrics registry,
// span tracer, exporters, the JSON reader, and the cost-model calibration
// report -- including the end-to-end executor trace and the differential
// oracle tying calibration to the scheduler's own symbolic timeline.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "ptask/arch/machine.hpp"
#include "ptask/cost/cost_model.hpp"
#include "ptask/obs/calibration.hpp"
#include "ptask/obs/export.hpp"
#include "ptask/obs/json.hpp"
#include "ptask/obs/metrics.hpp"
#include "ptask/obs/prometheus.hpp"
#include "ptask/obs/trace.hpp"
#include "ptask/ode/graph_gen.hpp"
#include "ptask/rt/dynamic_scheduler.hpp"
#include "ptask/rt/executor.hpp"
#include "ptask/sched/layer_scheduler.hpp"
#include "ptask/sched/schedule.hpp"

namespace ptask::obs {
namespace {

// ---- metrics ----

TEST(Metrics, CounterAccumulatesAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, HistogramBucketsByPowerOfTwo) {
  Histogram h;
  h.observe(0);    // bucket 0
  h.observe(1);    // bucket 1
  h.observe(2);    // bucket 2
  h.observe(3);    // bucket 2
  h.observe(900);  // bucket 10: [512, 1024)
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 906u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(10), 1u);
  // Median of {0,1,2,3,900} lies in bucket 2 -> upper bound 3.
  EXPECT_EQ(h.quantile_upper_bound(0.5), 3u);
  EXPECT_EQ(h.quantile_upper_bound(1.0), 1023u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile_upper_bound(0.5), 0u);
}

TEST(Metrics, PercentileMatchesExactReferencesWithinLogBucketError) {
  // Exact references via the shared nearest-rank helper; the histogram's
  // interpolated estimate must stay within the documented factor-of-two
  // bound (same power-of-two bucket as the true quantile).
  const auto check = [](const std::vector<std::uint64_t>& values) {
    Histogram h;
    std::vector<double> exact;
    exact.reserve(values.size());
    for (const std::uint64_t v : values) {
      h.observe(v);
      exact.push_back(static_cast<double>(v));
    }
    for (const double q : {0.5, 0.9, 0.99}) {
      const double reference = percentile_nearest_rank(exact, q);
      const double estimate = h.percentile(q);
      if (reference == 0.0) {
        EXPECT_EQ(estimate, 0.0) << "q=" << q;
      } else {
        EXPECT_GT(estimate, reference / 2.0) << "q=" << q;
        EXPECT_LT(estimate, reference * 2.0) << "q=" << q;
      }
    }
  };

  // Constant distribution: every quantile sits in value's bucket.
  check(std::vector<std::uint64_t>(100, 750));
  // Uniform 1..1024 (spans eleven buckets).
  std::vector<std::uint64_t> uniform;
  for (std::uint64_t v = 1; v <= 1024; ++v) uniform.push_back(v);
  check(uniform);
  // Two-point distribution with a heavy tail.
  std::vector<std::uint64_t> two_point(95, 10);
  two_point.insert(two_point.end(), 5, 10'000);
  check(two_point);
  // All zeros: percentiles are exactly 0.
  check(std::vector<std::uint64_t>(10, 0));
}

TEST(Metrics, PercentileEdgeCasesAndMonotonicity) {
  Histogram empty;
  EXPECT_EQ(empty.percentile(0.5), 0.0);

  Histogram h;
  h.observe(0);
  h.observe(6);
  h.observe(100);
  h.observe(5'000);
  // Monotone non-decreasing in q across the whole range.
  double previous = -1.0;
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    const double estimate = h.percentile(q);
    EXPECT_GE(estimate, previous) << "q=" << q;
    previous = estimate;
  }
  // q clamps: below 0 and above 1 behave like the endpoints.
  EXPECT_EQ(h.percentile(-1.0), h.percentile(0.0));
  EXPECT_EQ(h.percentile(2.0), h.percentile(1.0));
  // A single zero observation keeps every quantile exactly zero.
  Histogram zeros;
  zeros.observe(0);
  EXPECT_EQ(zeros.percentile(0.99), 0.0);
}

TEST(Metrics, PercentileNearestRankIsExact) {
  // The shared reference helper used by bench JSON and ptask_loadgen:
  // rank = min(n - 1, floor(q * n)) on the sorted sample.
  const std::vector<double> values{5.0, 1.0, 4.0, 2.0, 3.0};
  EXPECT_EQ(percentile_nearest_rank(values, 0.0), 1.0);
  EXPECT_EQ(percentile_nearest_rank(values, 0.5), 3.0);
  EXPECT_EQ(percentile_nearest_rank(values, 0.9), 5.0);
  EXPECT_EQ(percentile_nearest_rank(values, 1.0), 5.0);
  EXPECT_EQ(percentile_nearest_rank({}, 0.5), 0.0);
  EXPECT_EQ(percentile_nearest_rank({42.0}, 0.99), 42.0);
}

// ---- Prometheus exposition ----

TEST(Prometheus, NamesAreSanitizedWithThePtaskPrefix) {
  EXPECT_EQ(prometheus_name("serve.latency_us"), "ptask_serve_latency_us");
  EXPECT_EQ(prometheus_name("serve.strategy.portfolio.requests"),
            "ptask_serve_strategy_portfolio_requests");
  EXPECT_EQ(prometheus_name("weird \"name\"\\x"), "ptask_weird__name__x");
}

TEST(Prometheus, RenderParsesBackAndPercentilesAgree) {
  MetricsRegistry reg;
  reg.counter("serve.requests").add(17);
  Histogram& h = reg.histogram("serve.latency_us");
  for (std::uint64_t v = 1; v <= 512; ++v) h.observe(v);
  h.observe(0);

  const std::string text = render_prometheus(reg);
  // Counters: TYPE line + _total sample.
  EXPECT_NE(text.find("# TYPE ptask_serve_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("ptask_serve_requests_total 17"), std::string::npos);
  // Histograms: TYPE line, cumulative buckets, +Inf, sum, count.
  EXPECT_NE(text.find("# TYPE ptask_serve_latency_us histogram"),
            std::string::npos);
  EXPECT_NE(text.find("ptask_serve_latency_us_bucket{le=\"+Inf\"} 513"),
            std::string::npos);

  const PromHistogram parsed =
      parse_prometheus_histogram(text, "ptask_serve_latency_us");
  ASSERT_TRUE(parsed.found);
  EXPECT_EQ(parsed.count, 513u);
  EXPECT_EQ(parsed.sum, static_cast<double>(h.sum()));
  ASSERT_FALSE(parsed.buckets.empty());
  for (std::size_t i = 1; i < parsed.buckets.size(); ++i) {
    EXPECT_GT(parsed.buckets[i].first, parsed.buckets[i - 1].first);
    EXPECT_GE(parsed.buckets[i].second, parsed.buckets[i - 1].second);
  }
  EXPECT_TRUE(std::isinf(parsed.buckets.back().first));
  EXPECT_EQ(parsed.buckets.back().second, parsed.count);

  // The exposition-side estimator reproduces Histogram::percentile up to
  // the inclusive-bound shift: exposition buckets interpolate across
  // (2^(i-1)-1, 2^i-1] while the histogram uses [2^(i-1), 2^i), so the two
  // estimates differ by exactly 1 -- far inside the shared factor-of-two
  // bucket error bound.
  for (const double q : {0.5, 0.9, 0.99}) {
    EXPECT_NEAR(prometheus_percentile(parsed, q), h.percentile(q), 1.0)
        << "q=" << q;
  }
}

TEST(Prometheus, EmptyHistogramAndMissingMetric) {
  MetricsRegistry reg;
  reg.histogram("serve.untouched_us");
  const std::string text = render_prometheus(reg);
  const PromHistogram parsed =
      parse_prometheus_histogram(text, "ptask_serve_untouched_us");
  ASSERT_TRUE(parsed.found);
  EXPECT_EQ(parsed.count, 0u);
  EXPECT_EQ(prometheus_percentile(parsed, 0.99), 0.0);
  const PromHistogram missing =
      parse_prometheus_histogram(text, "ptask_no_such_metric");
  EXPECT_FALSE(missing.found);
}

TEST(Metrics, RegistryHandsOutStableReferences) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(7);
  reg.reset();  // zeroes, but the reference stays valid
  EXPECT_EQ(b.value(), 0u);
  a.add(3);
  const std::vector<CounterSample> samples = reg.counters();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].name, "x");
  EXPECT_EQ(samples[0].value, 3u);
}

TEST(Metrics, RegistryIsThreadSafe) {
  MetricsRegistry reg;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < 1000; ++i) {
        reg.counter("shared").add();
        reg.histogram("h").observe(static_cast<std::uint64_t>(i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(reg.counter("shared").value(), 4000u);
  EXPECT_EQ(reg.histogram("h").count(), 4000u);
}

// ---- tracer ----

TEST(Tracer, CollectsSpansFromManyThreads) {
  Tracer tracer;
  tracer.set_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kSpans = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (int i = 0; i < kSpans; ++i) {
        Span s;
        s.kind = SpanKind::Task;
        s.name = "t" + std::to_string(t);
        s.worker = t;
        s.begin_s = i;
        s.end_s = i + 1;
        tracer.record(std::move(s));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const std::vector<Span> spans = tracer.take();
  EXPECT_EQ(spans.size(), static_cast<std::size_t>(kThreads * kSpans));
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_TRUE(tracer.take().empty());  // take() removes what it returns
}

TEST(Tracer, DropsBeyondPerThreadCap) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.set_max_spans_per_thread(10);
  for (int i = 0; i < 25; ++i) {
    Span s;
    s.name = "s";
    tracer.record(std::move(s));
  }
  EXPECT_EQ(tracer.take().size(), 10u);
  EXPECT_EQ(tracer.dropped(), 15u);
  tracer.clear();
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, ScopedSpanIsInertWhenDisabled) {
  tracer().set_enabled(false);
  tracer().clear();
  {
    ScopedSpan span(SpanKind::Task, "ignored");
    EXPECT_FALSE(span.active());
  }
  EXPECT_TRUE(tracer().take().empty());
}

TEST(Tracer, ScopedSpanInheritsThreadContext) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  tracer().clear();
  tracer().set_enabled(true);
  {
    ThreadContext ctx;
    ctx.worker = 3;
    ctx.group = 1;
    ctx.group_size = 2;
    ctx.layer = 4;
    ctx.task = 7;
    ctx.contracted = 5;
    ContextScope scope(ctx);
    ScopedSpan span(SpanKind::Collective, "op");
    span.set_bytes(128);
  }
  tracer().set_enabled(false);
  const std::vector<Span> spans = tracer().take();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].worker, 3);
  EXPECT_EQ(spans[0].group, 1);
  EXPECT_EQ(spans[0].group_size, 2);
  EXPECT_EQ(spans[0].layer, 4);
  EXPECT_EQ(spans[0].task, 7);
  EXPECT_EQ(spans[0].contracted, 5);
  EXPECT_EQ(spans[0].bytes, 128u);
  EXPECT_GE(spans[0].duration_s(), 0.0);
  // The scope restored the ambient context.
  EXPECT_EQ(thread_context().worker, -1);
}

// ---- JSON reader ----

TEST(Json, ParsesDocumentWithEveryValueKind) {
  const json::Value doc = json::parse(
      R"({"a": [1, -2.5, 1e3], "b": {"nested": true}, "c": null,)"
      R"( "s": "x\n\"yA"})");
  ASSERT_TRUE(doc.is_object());
  const json::Value* a = doc.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_DOUBLE_EQ(a->array[0].number, 1.0);
  EXPECT_DOUBLE_EQ(a->array[1].number, -2.5);
  EXPECT_DOUBLE_EQ(a->array[2].number, 1000.0);
  ASSERT_NE(doc.find("b"), nullptr);
  EXPECT_TRUE(doc.find("b")->find("nested")->boolean);
  EXPECT_TRUE(doc.find("c")->is_null());
  EXPECT_EQ(doc.find("s")->string, "x\n\"yA");
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(json::parse("{"), std::runtime_error);
  EXPECT_THROW(json::parse("[1, 2,]"), std::runtime_error);
  EXPECT_THROW(json::parse("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW(json::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(json::parse("01x"), std::runtime_error);
  EXPECT_THROW(json::parse("{} trailing"), std::runtime_error);
  EXPECT_THROW(json::parse("tru"), std::runtime_error);
}

// ---- exporters ----

std::vector<Span> sample_spans() {
  std::vector<Span> spans;
  Span task;
  task.kind = SpanKind::Task;
  task.name = "compute \"a\"";  // exercises string escaping
  task.worker = 2;
  task.group = 0;
  task.group_size = 2;
  task.layer = 0;
  task.begin_s = 0.001;
  task.end_s = 0.002;
  spans.push_back(task);
  Span sim;
  sim.kind = SpanKind::Collective;
  sim.clock = ClockDomain::Simulated;
  sim.name = "transfer";
  sim.worker = 1;
  sim.bytes = 4096;
  sim.begin_s = 0.5;
  sim.end_s = 0.75;
  spans.push_back(sim);
  Span host;  // zero duration, no worker -> instant event on the host track
  host.kind = SpanKind::Scheduler;
  host.name = "sched";
  host.begin_s = 0.0;
  host.end_s = 0.0;
  spans.push_back(host);
  return spans;
}

TEST(ChromeExport, EmitsParsableEventsWithTracks) {
  const std::string text = render_chrome_trace(sample_spans());
  const json::Value doc = json::parse(text);
  const json::Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  int complete = 0, instant = 0, metadata = 0;
  bool saw_real_pid = false, saw_sim_pid = false, saw_host_tid = false;
  for (const json::Value& e : events->array) {
    const std::string& ph = e.find("ph")->string;
    if (ph == "M") {
      ++metadata;
      continue;
    }
    const int pid = static_cast<int>(e.find("pid")->number);
    const int tid = static_cast<int>(e.find("tid")->number);
    saw_real_pid |= pid == 1;
    saw_sim_pid |= pid == 2;
    saw_host_tid |= tid == kHostTid;
    if (ph == "X") {
      ++complete;
      EXPECT_GT(e.find("dur")->number, 0.0);
    } else if (ph == "i") {
      ++instant;
    }
    ASSERT_NE(e.find("args"), nullptr);
    EXPECT_NE(e.find("args")->find("bytes"), nullptr);
  }
  EXPECT_EQ(complete, 2);
  EXPECT_EQ(instant, 1);
  // 2 process_name + 3 thread_name metadata events.
  EXPECT_EQ(metadata, 5);
  EXPECT_TRUE(saw_real_pid);
  EXPECT_TRUE(saw_sim_pid);
  EXPECT_TRUE(saw_host_tid);

  // The task span's timestamps are microseconds.
  for (const json::Value& e : events->array) {
    if (e.find("name")->string == "compute \"a\"") {
      EXPECT_NEAR(e.find("ts")->number, 1000.0, 1e-6);
      EXPECT_NEAR(e.find("dur")->number, 1000.0, 1e-6);
    }
  }
}

TEST(SummaryExport, ListsSpanKindsAndMetrics) {
  MetricsRegistry reg;
  reg.counter("demo.count").add(3);
  reg.histogram("demo.hist").observe(100);
  const std::string text = render_summary(sample_spans(), reg);
  EXPECT_NE(text.find("task"), std::string::npos);
  EXPECT_NE(text.find("collective"), std::string::npos);
  EXPECT_NE(text.find("demo.count = 3"), std::string::npos);
  EXPECT_NE(text.find("demo.hist"), std::string::npos);
}

// ---- calibration ----

arch::Machine machine() { return arch::Machine(arch::chic()); }

/// Builds a two-step PABM program graph (stage layers + update layers).
core::TaskGraph pabm_program() {
  ode::SolverGraphSpec spec;
  spec.n = std::size_t{1} << 12;
  spec.stages = 4;
  spec.iterations = 2;
  spec.method = ode::Method::PABM;
  core::TaskGraph program = core::repeat_graph(spec.step_graph(), 2);
  program.add_start_stop_markers();
  return program;
}

TEST(Calibration, SymbolicTimelineIsTheZeroErrorOracle) {
  // Measured spans synthesized from the scheduler's own Gantt lowering with
  // the symbolic cost model must calibrate to ~0 relative error: obs and
  // sched agree exactly when "measured" time *is* the model.
  const cost::CostModel cost(machine());
  const core::TaskGraph graph = pabm_program();
  const sched::LayeredSchedule schedule =
      sched::LayerScheduler(cost).schedule(graph, 8);
  const core::TaskGraph& contracted = schedule.contraction.contracted;
  const sched::GanttSchedule gantt =
      sched::to_gantt(schedule, [&](core::TaskId id, int q, int g) {
        return cost.symbolic_task_time(contracted.task(id), q, g, 8);
      });
  const std::vector<Span> spans = spans_from_gantt(schedule, gantt);
  ASSERT_FALSE(spans.empty());

  const CalibrationReport report = calibrate(spans, schedule, cost);
  ASSERT_FALSE(report.tasks.empty());
  for (const TaskCalibration& t : report.tasks) {
    EXPECT_LT(std::abs(t.rel_error), 1e-9) << t.name;
    EXPECT_GT(t.predicted_s, 0.0);
  }
  // Layer envelopes only match the per-layer prediction when the layer's
  // groups are balanced; the stage layers of PABM are, so every reported
  // layer row must be exact as well.
  ASSERT_FALSE(report.layers.empty());
  for (const LayerCalibration& l : report.layers) {
    EXPECT_LT(std::abs(l.rel_error), 1e-9) << "layer " << l.layer;
  }
  EXPECT_LT(std::abs(report.mean_abs_rel_error), 1e-9);
  EXPECT_NEAR(report.fitted_scale, 1.0, 1e-9);

  const std::string table = render_calibration(report);
  EXPECT_NE(table.find("cost-model calibration"), std::string::npos);
  EXPECT_NE(table.find("fitted scale"), std::string::npos);
}

TEST(Calibration, MeasuredSlowerThanModelGivesPositiveError) {
  const cost::CostModel cost(machine());
  const core::TaskGraph graph = pabm_program();
  const sched::LayeredSchedule schedule =
      sched::LayerScheduler(cost).schedule(graph, 8);
  const core::TaskGraph& contracted = schedule.contraction.contracted;
  // "Measured" runs 2x slower than predicted everywhere.
  const sched::GanttSchedule gantt =
      sched::to_gantt(schedule, [&](core::TaskId id, int q, int g) {
        return 2.0 * cost.symbolic_task_time(contracted.task(id), q, g, 8);
      });
  const CalibrationReport report =
      calibrate(spans_from_gantt(schedule, gantt), schedule, cost);
  ASSERT_FALSE(report.tasks.empty());
  for (const TaskCalibration& t : report.tasks) {
    EXPECT_NEAR(t.rel_error, 1.0, 1e-9) << t.name;
  }
  EXPECT_NEAR(report.fitted_scale, 2.0, 1e-9);
}

TEST(Calibration, SimTraceConvertsToSimulatedSpans) {
  sim::SimResult result;
  result.trace.push_back(
      sim::TraceEvent{sim::TraceEvent::Kind::Transfer, 1, 0, 2.0, 3.0, 64});
  result.trace.push_back(
      sim::TraceEvent{sim::TraceEvent::Kind::Compute, 0, -1, 0.0, 1.5, 0});
  const std::vector<Span> spans = spans_from_sim(result);
  ASSERT_EQ(spans.size(), 2u);
  // Sorted by begin time.
  EXPECT_EQ(spans[0].kind, SpanKind::Task);
  EXPECT_EQ(spans[0].worker, 0);
  EXPECT_EQ(spans[0].clock, ClockDomain::Simulated);
  EXPECT_DOUBLE_EQ(spans[0].duration_s(), 1.5);
  EXPECT_EQ(spans[1].kind, SpanKind::Collective);
  EXPECT_EQ(spans[1].worker, 1);
  EXPECT_EQ(spans[1].bytes, 64u);
}

// ---- end-to-end executor trace ----

/// Hand-built two-layer schedule over 4 cores:
///   layer 0: tasks 0 and 1 on two groups of 2;
///   layer 1: task 2 on one group of 4.
sched::LayeredSchedule two_layer_schedule(const core::TaskGraph& g) {
  sched::LayeredSchedule s;
  s.total_cores = 4;
  s.contraction.contracted = g;
  for (core::TaskId id = 0; id < g.num_tasks(); ++id) {
    s.contraction.members.push_back({id});
    s.contraction.representative.push_back(id);
  }
  sched::ScheduledLayer l0;
  l0.tasks = {0, 1};
  l0.group_sizes = {2, 2};
  l0.task_group = {0, 1};
  sched::ScheduledLayer l1;
  l1.tasks = {2};
  l1.group_sizes = {4};
  l1.task_group = {0};
  s.layers.push_back(std::move(l0));
  s.layers.push_back(std::move(l1));
  return s;
}

TEST(ExecutorTrace, EndToEndSpansNestAndExportParses) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  core::TaskGraph g;
  g.add_task(core::MTask("alpha", 1.0));
  g.add_task(core::MTask("beta", 1.0));
  g.add_task(core::MTask("gamma", 1.0));
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  const sched::LayeredSchedule schedule = two_layer_schedule(g);

  std::vector<rt::TaskFn> fns(3);
  for (int i = 0; i < 3; ++i) {
    fns[static_cast<std::size_t>(i)] = [](rt::ExecContext& ctx) {
      // A touch of real work plus a group collective, so task spans have
      // measurable duration and barrier-wait spans appear inside them.
      volatile double acc = 0.0;
      for (int k = 0; k < 20000; ++k) acc = acc + 1e-6 * k;
      ctx.comm->barrier(ctx.group_rank);
    };
  }

  tracer().clear();
  tracer().set_enabled(true);
  rt::Executor exec(4);
  exec.run(schedule, fns);
  tracer().set_enabled(false);
  const std::vector<Span> spans = tracer().take();

  std::vector<const Span*> runs, layers, tasks, barriers;
  for (const Span& s : spans) {
    if (s.kind == SpanKind::Run) runs.push_back(&s);
    if (s.kind == SpanKind::Layer) layers.push_back(&s);
    if (s.kind == SpanKind::Task) tasks.push_back(&s);
    if (s.kind == SpanKind::BarrierWait) barriers.push_back(&s);
  }
  ASSERT_EQ(runs.size(), 1u);
  ASSERT_EQ(layers.size(), 2u);
  // Layer 0: tasks alpha+beta on 2 workers each; layer 1: gamma on 4.
  ASSERT_EQ(tasks.size(), 8u);
  EXPECT_FALSE(barriers.empty());

  const Span& run = *runs[0];
  double task_sum_per_core[4] = {0.0, 0.0, 0.0, 0.0};
  for (const Span* t : tasks) {
    // Per-core track assignment: every task span executes on a real worker.
    ASSERT_GE(t->worker, 0);
    ASSERT_LT(t->worker, 4);
    EXPECT_GE(t->group, 0);
    EXPECT_GT(t->group_size, 0);
    // Nesting: task spans lie within the run span and their layer span.
    EXPECT_GE(t->begin_s, run.begin_s);
    EXPECT_LE(t->end_s, run.end_s);
    ASSERT_GE(t->layer, 0);
    ASSERT_LT(t->layer, 2);
    const Span* layer = nullptr;
    for (const Span* l : layers) {
      if (l->layer == t->layer) layer = l;
    }
    ASSERT_NE(layer, nullptr);
    EXPECT_GE(t->begin_s, layer->begin_s);
    EXPECT_LE(t->end_s, layer->end_s);
    task_sum_per_core[t->worker] += t->duration_s();
  }
  // A core executes tasks sequentially, so its task time fits in the run.
  for (double sum : task_sum_per_core) {
    EXPECT_LE(sum, run.duration_s() + 1e-9);
  }
  // Barrier waits inherit the executing task's attribution.
  for (const Span* b : barriers) {
    EXPECT_GE(b->worker, 0);
    EXPECT_GE(b->group, 0);
    EXPECT_GE(b->task, 0);
  }

  // The exported trace must round-trip through the JSON reader.
  const json::Value doc = json::parse(render_chrome_trace(spans));
  const json::Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::size_t timed = 0;
  for (const json::Value& e : events->array) {
    const std::string& ph = e.find("ph")->string;
    if (ph == "X" || ph == "i") ++timed;
  }
  EXPECT_EQ(timed, spans.size());
}

TEST(ExecutorTrace, RealRunCalibratesAgainstTheCostModel) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  core::TaskGraph g;
  g.add_task(core::MTask("alpha", 1.0e6));
  g.add_task(core::MTask("beta", 1.0e6));
  g.add_task(core::MTask("gamma", 2.0e6));
  const sched::LayeredSchedule schedule = two_layer_schedule(g);
  std::vector<rt::TaskFn> fns(3);
  for (int i = 0; i < 3; ++i) {
    fns[static_cast<std::size_t>(i)] = [](rt::ExecContext&) {
      volatile double acc = 0.0;
      for (int k = 0; k < 10000; ++k) acc = acc + 1e-6 * k;
    };
  }
  tracer().clear();
  tracer().set_enabled(true);
  rt::Executor exec(4);
  exec.run(schedule, fns);
  tracer().set_enabled(false);

  const cost::CostModel cost(machine());
  const CalibrationReport report =
      calibrate(tracer().take(), schedule, cost);
  // All three tasks have positive predictions and measured wall time, so
  // the report has one row each with a finite error.
  ASSERT_EQ(report.tasks.size(), 3u);
  for (const TaskCalibration& t : report.tasks) {
    EXPECT_GT(t.predicted_s, 0.0);
    EXPECT_GT(t.measured_s, 0.0);
    EXPECT_EQ(t.invocations, 1u);
    EXPECT_TRUE(std::isfinite(t.rel_error));
  }
  EXPECT_EQ(report.layers.size(), 2u);
}

TEST(DynamicSchedulerTrace, RecordsTaskSpansAndMetrics) {
  const std::uint64_t submitted_before =
      metrics().counter("rt.dyn.submitted").value();
  const std::uint64_t completed_before =
      metrics().counter("rt.dyn.completed").value();

  if (kTracingCompiledIn) {
    tracer().clear();
    tracer().set_enabled(true);
  }
  {
    rt::DynamicScheduler dyn(4);
    std::atomic<int> executed{0};
    for (int i = 0; i < 3; ++i) {
      rt::DynamicTask task;
      task.name = "dyn" + std::to_string(i);
      task.min_cores = 1;
      task.max_cores = 2;
      task.body = [&executed](rt::ExecContext& ctx) {
        if (ctx.group_rank == 0) executed++;
      };
      dyn.submit(std::move(task));
    }
    dyn.wait();
    EXPECT_EQ(executed.load(), 3);
  }
  EXPECT_EQ(metrics().counter("rt.dyn.submitted").value() - submitted_before,
            3u);
  EXPECT_EQ(metrics().counter("rt.dyn.completed").value() - completed_before,
            3u);
  EXPECT_GE(metrics().histogram("rt.dyn.group_size").count(), 3u);

  if (kTracingCompiledIn) {
    tracer().set_enabled(false);
    const std::vector<Span> spans = tracer().take();
    int dyn_tasks = 0;
    for (const Span& s : spans) {
      if (s.kind == SpanKind::Task && s.name.rfind("dyn", 0) == 0) {
        ++dyn_tasks;
        EXPECT_GE(s.worker, 0);
        EXPECT_LT(s.worker, 4);
      }
    }
    // One span per group member per task; every task has >= 1 member.
    EXPECT_GE(dyn_tasks, 3);
  }
}

}  // namespace
}  // namespace ptask::obs
