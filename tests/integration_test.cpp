// End-to-end integration tests: specification -> scheduling -> mapping ->
// simulation, and real execution of scheduled M-task programs on the
// shared-memory runtime with schedule-independent results.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "ptask/npb/multizone.hpp"
#include "ptask/npb/stencil.hpp"
#include "ptask/ode/bruss2d.hpp"
#include "ptask/ode/epol.hpp"
#include "ptask/ode/graph_gen.hpp"
#include "ptask/rt/executor.hpp"
#include "ptask/sched/data_parallel.hpp"
#include "ptask/sched/layer_scheduler.hpp"
#include "ptask/sched/timeline.hpp"
#include "ptask/sched/validation.hpp"

namespace ptask {
namespace {

arch::Machine machine(int nodes = 16) {
  arch::MachineSpec spec = arch::chic();
  spec.num_nodes = nodes;
  return arch::Machine(spec);
}

// ---------------------------------------------------------------------------
// Full pipeline: every solver graph goes through scheduling, all three
// mapping strategies, validation, analytic evaluation, and simulation.
// ---------------------------------------------------------------------------

struct PipelineCase {
  ode::Method method;
  int cores;
  map::Strategy strategy;
  int d;
};

class PipelineTest : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(PipelineTest, SpecToSimulation) {
  const PipelineCase& c = GetParam();
  ode::SolverGraphSpec spec;
  spec.method = c.method;
  spec.n = 1 << 13;
  spec.stages = 4;
  spec.iterations = 2;
  spec.inner_iterations = 2;
  const core::TaskGraph g = spec.step_graph();

  const arch::Machine m = machine(c.cores / 4);
  const cost::CostModel cm(m);
  const sched::LayeredSchedule schedule =
      sched::LayerScheduler(cm).schedule(g, c.cores);
  ASSERT_TRUE(sched::validate(schedule, g).ok());

  const std::vector<cost::LayerLayout> layouts =
      map::map_schedule(schedule, m, c.strategy, c.d);
  const sched::TimelineEvaluator eval(cm);
  const sched::TimelineResult analytic = eval.evaluate(schedule, layouts);
  const sim::SimResult simulated = eval.simulate(schedule, layouts);
  EXPECT_GT(analytic.makespan, 0.0);
  EXPECT_GT(simulated.makespan, 0.0);
  EXPECT_TRUE(std::isfinite(simulated.makespan));
}

INSTANTIATE_TEST_SUITE_P(
    AllMethodsStrategies, PipelineTest,
    ::testing::Values(
        PipelineCase{ode::Method::EPOL, 32, map::Strategy::Consecutive, 1},
        PipelineCase{ode::Method::EPOL, 32, map::Strategy::Scattered, 1},
        PipelineCase{ode::Method::IRK, 32, map::Strategy::Mixed, 2},
        PipelineCase{ode::Method::DIIRK, 16, map::Strategy::Consecutive, 1},
        PipelineCase{ode::Method::PAB, 64, map::Strategy::Scattered, 1},
        PipelineCase{ode::Method::PABM, 64, map::Strategy::Mixed, 2}));

// ---------------------------------------------------------------------------
// Real execution: one EPOL time step as a scheduled M-task program on the
// shared-memory runtime.  The numerical result must be identical to the
// sequential solver, for every schedule and group structure.
// ---------------------------------------------------------------------------

class EpolRuntimeProgram {
 public:
  EpolRuntimeProgram(const ode::OdeSystem& system, int r, double t, double h,
                     std::vector<double> y)
      : system_(&system),
        r_(r),
        t_(t),
        h_(h),
        y_(std::move(y)),
        approx_(static_cast<std::size_t>(r)) {}

  /// Builds the step graph (same shape as ode::SolverGraphSpec) and the
  /// matching task functions over this program's shared state.
  core::TaskGraph build_graph() {
    ode::SolverGraphSpec spec = ode::make_spec(ode::Method::EPOL, *system_, r_);
    return spec.step_graph();
  }

  std::vector<rt::TaskFn> build_functions(const core::TaskGraph& graph) {
    std::vector<rt::TaskFn> fns(static_cast<std::size_t>(graph.num_tasks()));
    for (core::TaskId id = 0; id < graph.num_tasks(); ++id) {
      const std::string& name = graph.task(id).name();
      if (name.rfind("step(", 0) == 0) {
        const int i = std::stoi(name.substr(5));
        const std::size_t comma = name.find(',');
        const int j = std::stoi(name.substr(comma + 1));
        fns[static_cast<std::size_t>(id)] = [this, i, j](rt::ExecContext& ctx) {
          micro_step(ctx, i, j);
        };
      } else if (name == "combine") {
        fns[static_cast<std::size_t>(id)] = [this](rt::ExecContext& ctx) {
          if (ctx.group_rank == 0) {
            result_ = ode::Epol::combine(std::move(approx_));
          }
          ctx.comm->barrier(ctx.group_rank);
        };
      }
    }
    return fns;
  }

  const std::vector<double>& result() const { return result_; }

 private:
  /// SPMD micro step: block-distributed Euler update with a group allgather
  /// standing in for the multi-broadcast of the distributed implementation.
  void micro_step(rt::ExecContext& ctx, int i, int j) {
    const std::size_t n = system_->size();
    std::vector<double>& v = approx_[static_cast<std::size_t>(i - 1)];
    if (j == 1 && ctx.group_rank == 0) v = y_;  // read eta
    ctx.comm->barrier(ctx.group_rank);

    // Block partition of the components over the group.
    const std::size_t q = static_cast<std::size_t>(ctx.group_size);
    const std::size_t rank = static_cast<std::size_t>(ctx.group_rank);
    const std::size_t chunk = (n + q - 1) / q;
    const std::size_t begin = std::min(rank * chunk, n);
    const std::size_t end = std::min(begin + chunk, n);

    const double micro_h = h_ / static_cast<double>(i);
    const double tau = t_ + static_cast<double>(j - 1) * micro_h;
    std::vector<double> f(n);
    system_->eval(tau, v, f, begin, end);
    // Local update into this rank's disjoint block; the closing barrier
    // publishes the blocks to the group (the shared-memory realization of
    // the multi-broadcast the distributed version would perform here).
    ctx.comm->barrier(ctx.group_rank);
    for (std::size_t k = begin; k < end; ++k) {
      v[k] += micro_h * f[k];
    }
    ctx.comm->barrier(ctx.group_rank);
  }

  const ode::OdeSystem* system_;
  int r_;
  double t_, h_;
  std::vector<double> y_;
  std::vector<std::vector<double>> approx_;
  std::vector<double> result_;
};

class EpolRuntimeTest : public ::testing::TestWithParam<int> {};

TEST_P(EpolRuntimeTest, ScheduledExecutionMatchesSequentialSolver) {
  const int fixed_groups = GetParam();
  const ode::Bruss2D sys(8);  // n = 128
  const int r = 4;
  const double t0 = 0.0, h = 0.001;
  const std::vector<double> y0 = sys.initial_state();

  // Sequential reference step.
  ode::Epol reference(r);
  std::vector<double> expected = y0;
  reference.step(sys, t0, h, expected);

  // Scheduled parallel step on 8 virtual cores.
  EpolRuntimeProgram program(sys, r, t0, h, y0);
  const core::TaskGraph g = program.build_graph();
  const cost::CostModel cm(machine(4));
  sched::LayerSchedulerOptions opts;
  opts.fixed_groups = fixed_groups;
  const sched::LayeredSchedule schedule =
      sched::LayerScheduler(cm, opts).schedule(g, 8);
  ASSERT_TRUE(sched::validate(schedule, g).ok());

  std::vector<rt::TaskFn> fns = program.build_functions(g);
  rt::Executor exec(8);
  exec.run(schedule, fns);

  ASSERT_EQ(program.result().size(), expected.size());
  EXPECT_LT(ode::max_norm_diff(program.result(), expected), 1e-12)
      << "schedule with fixed_groups=" << fixed_groups
      << " changed the numerical result";
}

INSTANTIATE_TEST_SUITE_P(GroupCounts, EpolRuntimeTest,
                         ::testing::Values(0, 1, 2, 4),
                         [](const ::testing::TestParamInfo<int>& param_info) {
                           return param_info.param == 0
                                      ? std::string("search")
                                      : "g" + std::to_string(param_info.param);
                         });

// ---------------------------------------------------------------------------
// Real multi-zone execution: zones as M-tasks on the runtime; the result is
// independent of the number of groups.
// ---------------------------------------------------------------------------

double run_multizone(int fixed_groups, int steps) {
  const npb::MultiZoneProblem problem = npb::make_problem(npb::MzSolver::SP, 'S');
  const core::TaskGraph g = npb::step_graph(problem);

  std::vector<npb::ZoneField> fields;
  int x0 = 0;
  for (int iy = 0; iy < problem.y_zones; ++iy) {
    x0 = 0;
    for (int ix = 0; ix < problem.x_zones; ++ix) {
      const npb::ZoneGrid& zone =
          problem.zones[static_cast<std::size_t>(iy * problem.x_zones + ix)];
      fields.emplace_back(zone);
      fields.back().initialize(x0, iy * zone.ny, 24, 24);
      x0 += zone.nx;
    }
  }

  const cost::CostModel cm(machine(4));
  sched::LayerSchedulerOptions opts;
  opts.fixed_groups = fixed_groups;
  const sched::LayeredSchedule schedule =
      sched::LayerScheduler(cm, opts).schedule(g, 8);

  std::vector<rt::TaskFn> fns(static_cast<std::size_t>(g.num_tasks()));
  for (core::TaskId id = 0; id < g.num_tasks(); ++id) {
    if (g.task(id).is_marker()) continue;
    const std::size_t z = static_cast<std::size_t>(
        std::stoi(g.task(id).name().substr(4)));
    fns[static_cast<std::size_t>(id)] = [&fields, z](rt::ExecContext& ctx) {
      npb::ZoneField& field = fields[z];
      const int ny = field.grid().ny;
      const int rows = (ny + ctx.group_size - 1) / ctx.group_size;
      field.jacobi_sweep(ctx.group_rank * rows,
                         std::min(ny, (ctx.group_rank + 1) * rows));
      ctx.comm->barrier(ctx.group_rank);
      if (ctx.group_rank == 0) field.commit();
      ctx.comm->barrier(ctx.group_rank);
    };
  }

  rt::Executor exec(8);
  for (int s = 0; s < steps; ++s) exec.run(schedule, fns);

  double checksum = 0.0;
  for (const npb::ZoneField& f : fields) checksum += f.interior_max();
  return checksum;
}

TEST(MultizoneRuntime, ResultIndependentOfGroupCount) {
  const double g1 = run_multizone(1, 3);
  const double g2 = run_multizone(2, 3);
  const double g4 = run_multizone(4, 3);
  EXPECT_DOUBLE_EQ(g1, g2);
  EXPECT_DOUBLE_EQ(g1, g4);
  EXPECT_GT(g1, 0.0);
}

}  // namespace
}  // namespace ptask
