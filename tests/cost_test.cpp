// Tests for the cost model T(M, q, mp) and the hybrid MPI+OpenMP variant.

#include <gtest/gtest.h>

#include <numeric>

#include "ptask/cost/cost_model.hpp"
#include "ptask/cost/hybrid_model.hpp"
#include "ptask/map/core_sequence.hpp"
#include "ptask/map/mapping.hpp"

namespace ptask::cost {
namespace {

arch::Machine machine(int nodes = 16) {
  arch::MachineSpec spec = arch::chic();
  spec.num_nodes = nodes;
  return arch::Machine(spec);
}

core::MTask compute_task(double flop) { return core::MTask("comp", flop); }

core::MTask allgather_task(std::size_t bytes, int repeat = 1,
                           core::CommScope scope = core::CommScope::Group) {
  core::MTask t("ag", 0.0);
  t.add_comm(core::CollectiveOp{core::CollectiveKind::Allgather, scope, bytes,
                                repeat});
  return t;
}

TEST(CostModel, ComputeScalesLinearlyWithCores) {
  const CostModel cm(machine());
  const core::MTask t = compute_task(1.0e9);
  const double t1 = cm.symbolic_compute_time(t, 1);
  const double t4 = cm.symbolic_compute_time(t, 4);
  EXPECT_NEAR(t1 / 4.0, t4, 1e-12);
}

TEST(CostModel, ComputeRespectsMaxCores) {
  const CostModel cm(machine());
  core::MTask t = compute_task(1.0e9);
  t.set_max_cores(8);
  EXPECT_DOUBLE_EQ(cm.symbolic_compute_time(t, 8),
                   cm.symbolic_compute_time(t, 64));
}

TEST(CostModel, SymbolicTimeIsAmdahlShaped) {
  // With communication, adding cores eventually stops helping: the
  // group allgather cost grows with q.
  const CostModel cm(machine());
  core::MTask t = compute_task(1.0e8);
  t.add_comm(core::CollectiveOp{core::CollectiveKind::Allgather,
                                core::CommScope::Group, 64 * 1024, 1000});
  double prev = cm.symbolic_task_time(t, 1, 1, 64);
  double best = prev;
  int best_q = 1;
  for (int q = 2; q <= 64; q *= 2) {
    const double cur = cm.symbolic_task_time(t, q, 1, 64);
    if (cur < best) {
      best = cur;
      best_q = q;
    }
  }
  EXPECT_GT(best_q, 1);   // parallelism helps ...
  EXPECT_LT(best_q, 64);  // ... but not indefinitely (latency term)
}

TEST(CostModel, SymbolicIsUpperBoundOfMapped) {
  // The default mapping pattern prices everything on the slowest network, so
  // for any real consecutive layout of the same group the mapped collective
  // time must not exceed the symbolic one (same algorithm, faster links).
  const arch::Machine m = machine();
  const CostModel cm(m);
  const core::MTask t = allgather_task(1 << 20);
  const int q = 16;
  LayerLayout layout;
  GroupLayout g;
  g.cores.resize(static_cast<std::size_t>(q));
  std::iota(g.cores.begin(), g.cores.end(), 0);
  layout.groups.push_back(g);
  const double mapped = cm.mapped_task_time(t, layout, 0);
  const double symbolic = cm.symbolic_task_time(t, q, 1, q);
  EXPECT_LE(mapped, symbolic * 1.0001);
}

TEST(CostModel, GlobalScopeUsesAllCores) {
  const CostModel cm(machine());
  const core::MTask global = allgather_task(1 << 20, 1, core::CommScope::Global);
  const core::MTask group = allgather_task(1 << 20, 1, core::CommScope::Group);
  // Same q, but global ops see total_cores = 64: more ring rounds.
  const double tg = cm.symbolic_comm_time(global, 8, 1, 64);
  const double tq = cm.symbolic_comm_time(group, 8, 1, 64);
  EXPECT_GT(tg, tq);
}

TEST(CostModel, OrthogonalScopeVanishesWithOneGroup) {
  const CostModel cm(machine());
  const core::MTask t =
      allgather_task(1 << 20, 1, core::CommScope::Orthogonal);
  EXPECT_DOUBLE_EQ(cm.symbolic_comm_time(t, 16, 1, 16), 0.0);
  EXPECT_GT(cm.symbolic_comm_time(t, 16, 4, 64), 0.0);
}

TEST(CostModel, RepeatMultipliesCost) {
  const CostModel cm(machine());
  const core::MTask once = allgather_task(1 << 16, 1);
  const core::MTask thrice = allgather_task(1 << 16, 3);
  EXPECT_NEAR(3.0 * cm.symbolic_comm_time(once, 8, 1, 8),
              cm.symbolic_comm_time(thrice, 8, 1, 8), 1e-12);
}

TEST(CostModel, MappedGroupCollectivePrefersConsecutive) {
  // Fig. 14 mechanism at the cost-model level: a ring allgather over all 64
  // cores of 16 nodes.  Consecutive ordering keeps 3 of 4 ring hops inside a
  // node and loads each NIC with one transfer per round; scattered ordering
  // makes every hop inter-node with 4 transfers per NIC per round.
  const arch::Machine m = machine();
  const CostModel cm(m);
  const core::MTask t = allgather_task(64u << 20);
  const int q = m.total_cores();
  LayerLayout lc, ls;
  lc.groups.push_back(
      GroupLayout{map::physical_sequence(m, map::Strategy::Consecutive)});
  ls.groups.push_back(
      GroupLayout{map::physical_sequence(m, map::Strategy::Scattered)});
  ASSERT_EQ(lc.groups[0].size(), q);
  const double t_cons = cm.mapped_task_time(t, lc, 0);
  const double t_scat = cm.mapped_task_time(t, ls, 0);
  EXPECT_LT(t_cons * 2.0, t_scat);
}

TEST(CostModel, OrthogonalCollectivePrefersScattered) {
  // Orthogonal comm binds same-position cores of the 4 groups; a scattered
  // mapping puts those on the same node.
  const arch::Machine m = machine();
  const CostModel cm(m);
  core::MTask t("orth", 0.0);
  t.add_comm(core::CollectiveOp{core::CollectiveKind::Allgather,
                                core::CommScope::Orthogonal, 16u << 20, 1});
  const int q = 16, groups = 4;

  auto make_layout = [&](map::Strategy s) {
    const std::vector<int> seq = map::physical_sequence(m, s);
    LayerLayout layout;
    for (int g = 0; g < groups; ++g) {
      layout.groups.push_back(GroupLayout{{seq.begin() + g * q,
                                           seq.begin() + (g + 1) * q}});
    }
    return layout;
  };
  const double t_cons =
      cm.mapped_task_time(t, make_layout(map::Strategy::Consecutive), 0);
  const double t_scat =
      cm.mapped_task_time(t, make_layout(map::Strategy::Scattered), 0);
  EXPECT_LT(t_scat, t_cons);
}

TEST(CostModel, RedistributionBetweenDisjointGroupsCostsTime) {
  const arch::Machine m = machine();
  const CostModel cm(m);
  const dist::RedistributionPlan plan = dist::RedistributionPlan::compute(
      1 << 16, 8, dist::Distribution::block(), 4, dist::Distribution::block(),
      4, false);
  const std::vector<int> src{0, 1, 2, 3};
  const std::vector<int> dst{4, 5, 6, 7};
  EXPECT_GT(cm.redistribution_time(plan, src, dst), 0.0);
}

TEST(CostModel, RedistributionWithinSameCoresIsFree) {
  const arch::Machine m = machine();
  const CostModel cm(m);
  const dist::RedistributionPlan plan = dist::RedistributionPlan::compute(
      1 << 16, 8, dist::Distribution::block(), 4, dist::Distribution::block(),
      4, true);
  const std::vector<int> cores{0, 1, 2, 3};
  EXPECT_DOUBLE_EQ(cm.redistribution_time(plan, cores, cores), 0.0);
}

TEST(CostModel, InputValidation) {
  const CostModel cm(machine());
  const core::MTask t = compute_task(1.0);
  EXPECT_THROW(cm.symbolic_compute_time(t, 0), std::invalid_argument);
  EXPECT_THROW(cm.symbolic_comm_time(t, 4, 0, 4), std::invalid_argument);
  LayerLayout empty;
  EXPECT_THROW(cm.mapped_collective_time(
                   core::CollectiveOp{}, empty, 0),
               std::out_of_range);
}

// --- hybrid MPI+OpenMP model (paper Section 4.7) ---

class HybridTest : public ::testing::Test {
 protected:
  HybridTest() : machine_(machine(32)) {}
  arch::Machine machine_;

  LayerLayout consecutive_layout(int q, int groups = 1) const {
    const std::vector<int> seq =
        map::physical_sequence(machine_, map::Strategy::Consecutive);
    LayerLayout layout;
    for (int g = 0; g < groups; ++g) {
      layout.groups.push_back(GroupLayout{{seq.begin() + g * q,
                                           seq.begin() + (g + 1) * q}});
    }
    return layout;
  }
};

TEST_F(HybridTest, RankLayoutTakesEveryTthCore) {
  HybridConfig cfg;
  cfg.threads_per_rank = 4;
  const HybridCostModel hm(machine_, cfg);
  const LayerLayout phys = consecutive_layout(16);
  const LayerLayout ranks = hm.rank_layout(phys);
  ASSERT_EQ(ranks.groups.size(), 1u);
  EXPECT_EQ(ranks.groups[0].size(), 4);
  EXPECT_EQ(ranks.groups[0].cores,
            (std::vector<int>{phys.groups[0].cores[0], phys.groups[0].cores[4],
                              phys.groups[0].cores[8],
                              phys.groups[0].cores[12]}));
}

TEST_F(HybridTest, RankLayoutRequiresDivisibility) {
  HybridConfig cfg;
  cfg.threads_per_rank = 3;
  const HybridCostModel hm(machine_, cfg);
  EXPECT_THROW(hm.rank_layout(consecutive_layout(16)), std::invalid_argument);
}

TEST_F(HybridTest, TeamSpanDetectsLevels) {
  HybridConfig cfg;
  cfg.threads_per_rank = 4;  // CHiC: 4 cores per node -> team spans one node
  const HybridCostModel hm(machine_, cfg);
  const LayerLayout phys = consecutive_layout(16);
  EXPECT_EQ(hm.team_span(phys.groups[0], 0), arch::CommLevel::SameNode);

  HybridConfig cfg2;
  cfg2.threads_per_rank = 2;  // within one processor
  const HybridCostModel hm2(machine_, cfg2);
  EXPECT_EQ(hm2.team_span(phys.groups[0], 0), arch::CommLevel::SameProcessor);

  HybridConfig cfg8;
  cfg8.threads_per_rank = 8;  // spans two CHiC nodes (DSM-style)
  const HybridCostModel hm8(machine_, cfg8);
  EXPECT_EQ(hm8.team_span(phys.groups[0], 0), arch::CommLevel::InterNode);
}

TEST_F(HybridTest, OneThreadEqualsPureModel) {
  const HybridCostModel hm(machine_, HybridConfig{});
  const CostModel cm(machine_);
  core::MTask t = compute_task(1.0e9);
  t.add_comm(core::CollectiveOp{core::CollectiveKind::Allgather,
                                core::CommScope::Group, 1 << 20, 2});
  const LayerLayout phys = consecutive_layout(16);
  EXPECT_DOUBLE_EQ(hm.mapped_task_time(t, phys, 0),
                   cm.mapped_task_time(t, phys, 0));
}

TEST_F(HybridTest, HybridHelpsCommunicationDominatedTasks) {
  // Large global allgather, little compute: fewer ranks -> less NIC traffic.
  HybridConfig cfg;
  cfg.threads_per_rank = 4;
  const HybridCostModel hm(machine_, cfg);
  const CostModel cm(machine_);
  core::MTask t = compute_task(1.0e8);
  t.add_comm(core::CollectiveOp{core::CollectiveKind::Allgather,
                                core::CommScope::Group, 64u << 20, 1});
  const LayerLayout phys = consecutive_layout(64);
  EXPECT_LT(hm.mapped_task_time(t, phys, 0), cm.mapped_task_time(t, phys, 0));
}

TEST_F(HybridTest, HybridHurtsSynchronizationHeavyTasks) {
  // Many tiny broadcasts (DIIRK's data-parallel pattern): the per-collective
  // team fork/join overhead outweighs the traffic savings.
  HybridConfig cfg;
  cfg.threads_per_rank = 4;
  const HybridCostModel hm(machine_, cfg);
  const CostModel cm(machine_);
  core::MTask t = compute_task(1.0e8);
  t.add_comm(core::CollectiveOp{core::CollectiveKind::Bcast,
                                core::CommScope::Group, 256, 20000});
  const LayerLayout phys = consecutive_layout(64);
  EXPECT_GT(hm.mapped_task_time(t, phys, 0), cm.mapped_task_time(t, phys, 0));
}

TEST_F(HybridTest, TeamSyncGrowsWithThreadsAndLevel) {
  HybridConfig cfg;
  cfg.threads_per_rank = 4;
  const HybridCostModel hm(machine_, cfg);
  EXPECT_DOUBLE_EQ(hm.team_sync_time(1, arch::CommLevel::SameNode), 0.0);
  EXPECT_LT(hm.team_sync_time(4, arch::CommLevel::SameProcessor),
            hm.team_sync_time(4, arch::CommLevel::InterNode));
  EXPECT_LT(hm.team_sync_time(2, arch::CommLevel::SameNode),
            hm.team_sync_time(16, arch::CommLevel::SameNode));
}

}  // namespace
}  // namespace ptask::cost
