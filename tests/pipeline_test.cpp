// Tests for the pass-based scheduling pipeline (pipeline.hpp): every pass
// in isolation over a hand-built PassContext, pipeline composition
// (Algorithm 1 chain, mapping as a sixth pass, canonical assembly), the
// scheduler registry, the canonical conversions, and -- the load-bearing
// property -- byte-identical equivalence between the composed pipeline and
// a verbatim copy of the pre-refactor monolithic LayerScheduler on all five
// fuzz graph families.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "ptask/arch/machine.hpp"
#include "ptask/core/graph_algorithms.hpp"
#include "ptask/cost/cost_model.hpp"
#include "ptask/fuzz/generator.hpp"
#include "ptask/fuzz/rng.hpp"
#include "ptask/map/mapping.hpp"
#include "ptask/ode/graph_gen.hpp"
#include "ptask/sched/cpa_scheduler.hpp"
#include "ptask/sched/pipeline.hpp"
#include "ptask/sched/registry.hpp"

namespace ptask::sched {
namespace {

arch::Machine machine(int nodes = 8) {
  arch::MachineSpec spec = arch::chic();
  spec.num_nodes = nodes;
  return arch::Machine(spec);
}

core::TaskGraph independent_tasks(const std::vector<double>& works) {
  core::TaskGraph g;
  for (std::size_t i = 0; i < works.size(); ++i) {
    g.add_task(core::MTask("t" + std::to_string(i), works[i]));
  }
  return g;
}

core::TaskGraph chain_graph(int length) {
  core::TaskGraph g;
  for (int i = 0; i < length; ++i) {
    g.add_task(core::MTask("c" + std::to_string(i), 1.0e9));
  }
  for (int i = 0; i + 1 < length; ++i) {
    g.add_edge(static_cast<core::TaskId>(i), static_cast<core::TaskId>(i + 1));
  }
  return g;
}

PassContext make_ctx(const core::TaskGraph& graph, const cost::CostModel& cost,
                     int total_cores, LayerSchedulerOptions options = {}) {
  PassContext ctx;
  ctx.graph = &graph;
  ctx.cost = &cost;
  ctx.total_cores = total_cores;
  ctx.options = options;
  return ctx;
}

// ---------------------------------------------------------------------------
// Reference implementation: a verbatim transplant of the pre-refactor
// monolithic LayerScheduler (obs instrumentation stripped; it does not
// affect results).  The equivalence property below compares every field of
// its output against the composed pipeline with exact == -- including the
// doubles, because the refactor promises bit-identical floating-point
// association order, not just agreement within a tolerance.
// ---------------------------------------------------------------------------

class ReferenceLayerScheduler {
 public:
  ReferenceLayerScheduler(const cost::CostModel& cost,
                          LayerSchedulerOptions options = {})
      : cost_(&cost), options_(options) {}

  LayeredSchedule schedule(const core::TaskGraph& graph,
                           int total_cores) const {
    if (total_cores <= 0) {
      throw std::invalid_argument("core count must be positive");
    }
    LayeredSchedule result;
    result.total_cores = total_cores;
    if (options_.contract_chains) {
      result.contraction = core::contract_linear_chains(graph);
    } else {
      // Identity contraction.
      result.contraction.contracted = graph;
      result.contraction.members.resize(
          static_cast<std::size_t>(graph.num_tasks()));
      result.contraction.representative.resize(
          static_cast<std::size_t>(graph.num_tasks()));
      for (core::TaskId id = 0; id < graph.num_tasks(); ++id) {
        result.contraction.members[static_cast<std::size_t>(id)] = {id};
        result.contraction.representative[static_cast<std::size_t>(id)] = id;
      }
    }
    const core::TaskGraph& contracted = result.contraction.contracted;
    const std::vector<std::vector<core::TaskId>> layers =
        core::greedy_layers(contracted);
    result.layers.reserve(layers.size());
    for (const std::vector<core::TaskId>& layer_tasks : layers) {
      ScheduledLayer layer =
          schedule_layer(contracted, layer_tasks, total_cores);
      result.predicted_makespan += layer.predicted_time;
      result.layers.push_back(std::move(layer));
    }
    return result;
  }

 private:
  ScheduledLayer schedule_layer(const core::TaskGraph& graph,
                                const std::vector<core::TaskId>& tasks,
                                int total_cores) const {
    const int P = total_cores;
    const int n_tasks = static_cast<int>(tasks.size());
    int g_limit = std::min(P, n_tasks);
    if (options_.max_groups > 0) {
      g_limit = std::min(g_limit, options_.max_groups);
    }
    int g_first = 1;
    if (options_.fixed_groups > 0) {
      g_first = g_limit = std::min(options_.fixed_groups, std::min(P, n_tasks));
    }

    ScheduledLayer best;
    double best_time = std::numeric_limits<double>::infinity();

    std::vector<std::size_t> order(tasks.size());
    std::iota(order.begin(), order.end(), 0);

    for (int g = g_first; g <= g_limit; ++g) {
      const std::vector<int> sizes = equal_group_sizes(P, g);
      std::vector<double> time(tasks.size());
      for (std::size_t i = 0; i < tasks.size(); ++i) {
        time[i] =
            cost_->symbolic_task_time(graph.task(tasks[i]), sizes[0], g, P);
      }
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return time[a] > time[b];
      });

      std::vector<double> accumulated(static_cast<std::size_t>(g), 0.0);
      std::vector<int> task_group(tasks.size(), 0);
      for (std::size_t i : order) {
        const std::size_t target = static_cast<std::size_t>(
            std::min_element(accumulated.begin(), accumulated.end()) -
            accumulated.begin());
        const double t = cost_->symbolic_task_time(graph.task(tasks[i]),
                                                   sizes[target], g, P);
        accumulated[target] += t;
        task_group[i] = static_cast<int>(target);
      }
      const double t_act =
          *std::max_element(accumulated.begin(), accumulated.end());
      if (t_act < best_time) {
        best_time = t_act;
        best.tasks = tasks;
        best.group_sizes = sizes;
        best.task_group = task_group;
        best.predicted_time = t_act;
      }
    }

    if (options_.adjust_group_sizes && best.num_groups() > 1) {
      std::vector<double> work(static_cast<std::size_t>(best.num_groups()),
                               0.0);
      for (std::size_t i = 0; i < best.tasks.size(); ++i) {
        work[static_cast<std::size_t>(best.task_group[i])] +=
            graph.task(best.tasks[i]).work_flop();
      }
      best.group_sizes = proportional_group_sizes(P, work);
      std::vector<double> accumulated(
          static_cast<std::size_t>(best.num_groups()), 0.0);
      for (std::size_t i = 0; i < best.tasks.size(); ++i) {
        const std::size_t gidx = static_cast<std::size_t>(best.task_group[i]);
        accumulated[gidx] += cost_->symbolic_task_time(
            graph.task(best.tasks[i]), best.group_sizes[gidx],
            best.num_groups(), P);
      }
      best.predicted_time =
          *std::max_element(accumulated.begin(), accumulated.end());
    }
    return best;
  }

  const cost::CostModel* cost_;
  LayerSchedulerOptions options_;
};

/// Field-by-field exact comparison (doubles with ==, deliberately).
void expect_identical(const LayeredSchedule& reference,
                      const LayeredSchedule& actual,
                      const std::string& label) {
  EXPECT_EQ(reference.total_cores, actual.total_cores) << label;
  EXPECT_EQ(reference.predicted_makespan, actual.predicted_makespan) << label;
  EXPECT_EQ(reference.contraction.members, actual.contraction.members)
      << label;
  EXPECT_EQ(reference.contraction.representative,
            actual.contraction.representative)
      << label;
  EXPECT_EQ(reference.contraction.contracted.num_tasks(),
            actual.contraction.contracted.num_tasks())
      << label;
  EXPECT_EQ(reference.contraction.contracted.num_edges(),
            actual.contraction.contracted.num_edges())
      << label;
  ASSERT_EQ(reference.layers.size(), actual.layers.size()) << label;
  for (std::size_t l = 0; l < reference.layers.size(); ++l) {
    const ScheduledLayer& a = reference.layers[l];
    const ScheduledLayer& b = actual.layers[l];
    const std::string where = label + ", layer " + std::to_string(l);
    EXPECT_EQ(a.tasks, b.tasks) << where;
    EXPECT_EQ(a.group_sizes, b.group_sizes) << where;
    EXPECT_EQ(a.task_group, b.task_group) << where;
    EXPECT_EQ(a.predicted_time, b.predicted_time) << where;
  }
}

core::TaskGraph family_graph(fuzz::GraphFamily family, fuzz::Rng& rng) {
  const fuzz::GeneratorParams params;
  switch (family) {
    case fuzz::GraphFamily::Layered:
      return fuzz::layered_graph(rng, params);
    case fuzz::GraphFamily::SeriesParallel:
      return fuzz::series_parallel_graph(rng, params);
    case fuzz::GraphFamily::RandomDag:
      return fuzz::random_dag(rng, params);
    case fuzz::GraphFamily::OdeSolver:
      return fuzz::ode_solver_graph(rng);
    case fuzz::GraphFamily::NpbMultiZone:
      return fuzz::npb_multizone_graph(rng);
  }
  throw std::logic_error("unknown family");
}

// ---------------------------------------------------------------------------
// The equivalence property: pipeline == pre-refactor monolith, bit for bit.
// ---------------------------------------------------------------------------

TEST(PipelineEquivalence, ReproducesMonolithOnAllFamilies) {
  // 5 families x 25 seeds = 125 cases with the default options, plus one
  // rotating non-default option set per case (forced groups, no chain
  // contraction, no adjustment, clipped search, and each performance knob
  // flipped away from its default -- the knobs are bit-transparent by
  // contract, so the reference must still be reproduced exactly).
  const std::uint64_t base =
      fuzz::substream(fuzz::seed_from_env(fuzz::kDefaultFuzzSeed), 0x9191);
  const std::vector<fuzz::GraphFamily> families = {
      fuzz::GraphFamily::Layered,       fuzz::GraphFamily::SeriesParallel,
      fuzz::GraphFamily::RandomDag,     fuzz::GraphFamily::OdeSolver,
      fuzz::GraphFamily::NpbMultiZone};
  const std::vector<LayerSchedulerOptions> variants = [] {
    std::vector<LayerSchedulerOptions> v(8);
    v[0].fixed_groups = 2;
    v[1].contract_chains = false;
    v[2].adjust_group_sizes = false;
    v[3].max_groups = 3;
    v[4].parallel_layers = 4;
    v[5].cost_cache = false;
    v[6].heap_lpt = false;
    v[7].prune_group_search = false;
    return v;
  }();

  int cases = 0;
  for (std::size_t f = 0; f < families.size(); ++f) {
    for (int s = 0; s < 25; ++s) {
      const std::uint64_t seed =
          fuzz::substream(base, (static_cast<std::uint64_t>(f) << 32) |
                                    static_cast<std::uint64_t>(s));
      fuzz::Rng graph_rng(seed);
      const core::TaskGraph graph = family_graph(families[f], graph_rng);
      fuzz::Rng shape_rng(fuzz::substream(seed, 0xC0DE));
      const arch::Machine m = machine(shape_rng.uniform(1, 16));
      const cost::CostModel cost(m);
      const int cores = 1 << shape_rng.uniform(1, 7);
      const std::string label =
          std::string(to_string(families[f])) + " seed " + std::to_string(s) +
          " cores " + std::to_string(cores);

      expect_identical(
          ReferenceLayerScheduler(cost).schedule(graph, cores),
          Pipeline::algorithm1(cost).run_layered(graph, cores), label);
      const LayerSchedulerOptions& opt = variants[static_cast<std::size_t>(
          s % static_cast<int>(variants.size()))];
      expect_identical(
          ReferenceLayerScheduler(cost, opt).schedule(graph, cores),
          Pipeline::algorithm1(cost, opt).run_layered(graph, cores),
          label + " (variant)");
      ++cases;
    }
  }
  EXPECT_EQ(cases, 125);
}

TEST(PipelineEquivalence, LayerSchedulerFacadeMatchesPipeline) {
  // The historical entry point must be the same computation.
  const arch::Machine m = machine();
  const cost::CostModel cost(m);
  ode::SolverGraphSpec spec;
  spec.method = ode::Method::PABM;
  spec.n = 1 << 12;
  spec.stages = 4;
  spec.iterations = 2;
  const core::TaskGraph graph = spec.step_graph();
  expect_identical(LayerScheduler(cost).schedule(graph, 32),
                   Pipeline::algorithm1(cost).run_layered(graph, 32),
                   "facade");
}

// ---------------------------------------------------------------------------
// Pass isolation.
// ---------------------------------------------------------------------------

class PassTest : public ::testing::Test {
 protected:
  PassTest() : machine_(machine()), cost_(machine_) {}
  arch::Machine machine_;
  cost::CostModel cost_;
};

TEST_F(PassTest, ContractChainsContractsLinearChains) {
  const core::TaskGraph graph = chain_graph(4);
  PassContext ctx = make_ctx(graph, cost_, 8);
  ContractChains().run(ctx);
  const core::ChainContraction expected = core::contract_linear_chains(graph);
  EXPECT_EQ(ctx.contraction.contracted.num_tasks(),
            expected.contracted.num_tasks());
  EXPECT_EQ(ctx.contraction.members, expected.members);
  EXPECT_EQ(ctx.contraction.representative, expected.representative);
  EXPECT_LT(ctx.contraction.contracted.num_tasks(), graph.num_tasks());
}

TEST_F(PassTest, ContractChainsInstallsIdentityWhenDisabled) {
  const core::TaskGraph graph = chain_graph(4);
  LayerSchedulerOptions options;
  options.contract_chains = false;
  PassContext ctx = make_ctx(graph, cost_, 8, options);
  ContractChains().run(ctx);
  ASSERT_EQ(ctx.contraction.contracted.num_tasks(), graph.num_tasks());
  for (core::TaskId id = 0; id < graph.num_tasks(); ++id) {
    EXPECT_EQ(ctx.contraction.members[static_cast<std::size_t>(id)],
              std::vector<core::TaskId>{id});
    EXPECT_EQ(ctx.contraction.representative[static_cast<std::size_t>(id)],
              id);
  }
}

TEST_F(PassTest, LayerizeMatchesGreedyLayers) {
  const core::TaskGraph graph = independent_tasks({1e9, 2e9, 3e9});
  PassContext ctx = make_ctx(graph, cost_, 8);
  ContractChains().run(ctx);
  Layerize().run(ctx);
  EXPECT_EQ(ctx.layer_tasks, core::greedy_layers(ctx.contraction.contracted));
  ASSERT_EQ(ctx.layer_tasks.size(), 1u);
  EXPECT_EQ(ctx.layer_tasks[0].size(), 3u);
}

TEST_F(PassTest, GroupSearchEnumeratesFullRange) {
  const core::TaskGraph graph = independent_tasks({1e9, 1e9, 1e9, 1e9});
  PassContext ctx = make_ctx(graph, cost_, 8);
  ContractChains().run(ctx);
  Layerize().run(ctx);
  GroupSearch().run(ctx);
  ASSERT_EQ(ctx.group_candidates.size(), 1u);
  // min(P, n_tasks) = 4 candidates.
  EXPECT_EQ(ctx.group_candidates[0], (std::vector<int>{1, 2, 3, 4}));
}

TEST_F(PassTest, GroupSearchHonoursMaxAndFixedGroups) {
  const core::TaskGraph graph = independent_tasks({1e9, 1e9, 1e9, 1e9});
  {
    LayerSchedulerOptions options;
    options.max_groups = 2;
    PassContext ctx = make_ctx(graph, cost_, 8, options);
    ContractChains().run(ctx);
    Layerize().run(ctx);
    GroupSearch().run(ctx);
    EXPECT_EQ(ctx.group_candidates[0], (std::vector<int>{1, 2}));
  }
  {
    LayerSchedulerOptions options;
    options.fixed_groups = 3;
    PassContext ctx = make_ctx(graph, cost_, 8, options);
    ContractChains().run(ctx);
    Layerize().run(ctx);
    GroupSearch().run(ctx);
    EXPECT_EQ(ctx.group_candidates[0], (std::vector<int>{3}));
  }
  {
    // Forced group counts clamp to the layer's task count.
    LayerSchedulerOptions options;
    options.fixed_groups = 10;
    PassContext ctx = make_ctx(graph, cost_, 8, options);
    ContractChains().run(ctx);
    Layerize().run(ctx);
    GroupSearch().run(ctx);
    EXPECT_EQ(ctx.group_candidates[0], (std::vector<int>{4}));
  }
}

TEST_F(PassTest, AssignLptRequiresGroupSearch) {
  const core::TaskGraph graph = independent_tasks({1e9, 1e9});
  PassContext ctx = make_ctx(graph, cost_, 4);
  ContractChains().run(ctx);
  Layerize().run(ctx);
  EXPECT_THROW(AssignLPT().run(ctx), std::logic_error);
}

TEST_F(PassTest, AssignLptSingleGroupAccumulatesInLptOrder) {
  const std::vector<double> works = {4.0e9, 1.0e9, 3.0e9, 2.0e9};
  const core::TaskGraph graph = independent_tasks(works);
  LayerSchedulerOptions options;
  options.fixed_groups = 1;
  PassContext ctx = make_ctx(graph, cost_, 4, options);
  ContractChains().run(ctx);
  Layerize().run(ctx);
  GroupSearch().run(ctx);
  AssignLPT().run(ctx);
  ASSERT_EQ(ctx.layers.size(), 1u);
  const ScheduledLayer& layer = ctx.layers[0];
  EXPECT_EQ(layer.group_sizes, std::vector<int>{4});
  EXPECT_EQ(layer.task_group, (std::vector<int>{0, 0, 0, 0}));
  // One group: the layer time is the sum of all task times on 4 cores,
  // accumulated in decreasing-time order.
  std::vector<double> times;
  for (std::size_t i = 0; i < layer.tasks.size(); ++i) {
    times.push_back(cost_.symbolic_task_time(
        ctx.contraction.contracted.task(layer.tasks[i]), 4, 1, 4));
  }
  std::sort(times.begin(), times.end(), std::greater<double>());
  double expected = 0.0;
  for (double t : times) expected += t;
  EXPECT_EQ(layer.predicted_time, expected);
}

TEST_F(PassTest, AdjustGroupsFollowsAccumulatedWork) {
  const core::TaskGraph graph = independent_tasks({3.0e10, 1.0e10});
  PassContext ctx = make_ctx(graph, cost_, 8);
  ContractChains().run(ctx);
  // Fabricate the AssignLPT outcome: two equal groups, one task each.
  ScheduledLayer layer;
  layer.tasks = {0, 1};
  layer.group_sizes = {4, 4};
  layer.task_group = {0, 1};
  layer.predicted_time = 1.0;
  ctx.layers.push_back(layer);
  AdjustGroups().run(ctx);
  // 3:1 work over 8 cores -> 6 and 2 (largest-remainder rounding).
  EXPECT_EQ(ctx.layers[0].group_sizes, (std::vector<int>{6, 2}));
  const double t0 = cost_.symbolic_task_time(graph.task(0), 6, 2, 8);
  const double t1 = cost_.symbolic_task_time(graph.task(1), 2, 2, 8);
  EXPECT_EQ(ctx.layers[0].predicted_time, std::max(t0, t1));
}

TEST_F(PassTest, AdjustGroupsIsANoOpWhenDisabledOrSingleGroup) {
  const core::TaskGraph graph = independent_tasks({3.0e10, 1.0e10});
  {
    LayerSchedulerOptions options;
    options.adjust_group_sizes = false;
    PassContext ctx = make_ctx(graph, cost_, 8, options);
    ContractChains().run(ctx);
    ScheduledLayer layer;
    layer.tasks = {0, 1};
    layer.group_sizes = {4, 4};
    layer.task_group = {0, 1};
    layer.predicted_time = 1.0;
    ctx.layers.push_back(layer);
    AdjustGroups().run(ctx);
    EXPECT_EQ(ctx.layers[0].group_sizes, (std::vector<int>{4, 4}));
    EXPECT_EQ(ctx.layers[0].predicted_time, 1.0);
  }
  {
    PassContext ctx = make_ctx(graph, cost_, 8);
    ContractChains().run(ctx);
    ScheduledLayer layer;
    layer.tasks = {0, 1};
    layer.group_sizes = {8};
    layer.task_group = {0, 0};
    layer.predicted_time = 1.0;
    ctx.layers.push_back(layer);
    AdjustGroups().run(ctx);
    EXPECT_EQ(ctx.layers[0].group_sizes, std::vector<int>{8});
    EXPECT_EQ(ctx.layers[0].predicted_time, 1.0);
  }
}

// ---------------------------------------------------------------------------
// Pipeline composition and canonical assembly.
// ---------------------------------------------------------------------------

class PipelineTest : public ::testing::Test {
 protected:
  PipelineTest() : machine_(machine()), cost_(machine_) {}

  static core::TaskGraph solver_graph() {
    ode::SolverGraphSpec spec;
    spec.method = ode::Method::PABM;
    spec.n = 1 << 12;
    spec.stages = 4;
    spec.iterations = 2;
    return spec.step_graph();
  }

  arch::Machine machine_;
  cost::CostModel cost_;
};

TEST_F(PipelineTest, Algorithm1ComposesTheFivePaperPasses) {
  const Pipeline pipeline = Pipeline::algorithm1(cost_);
  EXPECT_EQ(pipeline.name(), "layer");
  ASSERT_EQ(pipeline.passes().size(), 5u);
  const std::vector<std::string> expected = {
      "contract-chains", "layerize", "group-search", "assign-lpt",
      "adjust-groups"};
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(pipeline.passes()[i]->name(), expected[i]);
  }
}

TEST_F(PipelineTest, RunAssemblesCanonicalSchedule) {
  const core::TaskGraph graph = solver_graph();
  const Schedule s = Pipeline::algorithm1(cost_).run(graph, 16);
  EXPECT_EQ(s.strategy, "layer");
  EXPECT_TRUE(s.has_layers());
  EXPECT_EQ(s.total_cores(), 16);
  EXPECT_GT(s.makespan(), 0.0);
  ASSERT_EQ(s.allocation.size(), s.gantt.slots.size());
  for (core::TaskId id = 0; id < s.num_tasks(); ++id) {
    EXPECT_EQ(s.task_width(id),
              static_cast<int>(s.task_cores(id).size()));
  }
  // The lowered Gantt view agrees with the layered prediction up to
  // floating-point association order.
  EXPECT_NEAR(s.makespan(), s.layered.predicted_makespan,
              1e-9 * s.layered.predicted_makespan);
  EXPECT_THROW(Pipeline::algorithm1(cost_).run(graph, 0),
               std::invalid_argument);
}

TEST_F(PipelineTest, MapCoresPassBindsPhysicalLayoutsAsSixthStage) {
  const core::TaskGraph graph = solver_graph();
  Pipeline pipeline = Pipeline::algorithm1(cost_);
  pipeline.append(std::make_unique<map::MapCoresPass>());
  const Schedule s = pipeline.run(graph, 16);
  ASSERT_TRUE(s.has_layers());
  EXPECT_EQ(s.layouts.size(), s.num_layers());
  bool noted = false;
  for (const std::string& note : s.notes) {
    noted |= note.rfind("map-cores", 0) == 0;
  }
  EXPECT_TRUE(noted) << "mapping pass left no note";
}

TEST_F(PipelineTest, CanonicalMoldableResultKeepsGanttAndAllocation) {
  const core::TaskGraph graph = solver_graph();
  const CpaScheduler cpa(cost_);
  MoldableResult result = cpa.schedule(graph, 16);
  const std::vector<int> allocation = result.allocation;
  const double makespan = result.schedule.makespan;
  const Schedule s = canonical(graph, std::move(result), "cpa");
  EXPECT_EQ(s.strategy, "cpa");
  EXPECT_FALSE(s.has_layers());
  EXPECT_EQ(s.allocation, allocation);
  EXPECT_EQ(s.makespan(), makespan);
  EXPECT_EQ(s.layered.predicted_makespan, makespan);
  // Identity contraction: canonical ids are the original ids.
  ASSERT_EQ(s.scheduled_graph().num_tasks(), graph.num_tasks());
  for (core::TaskId id = 0; id < graph.num_tasks(); ++id) {
    EXPECT_EQ(s.layered.contraction.representative[static_cast<std::size_t>(
                  id)],
              id);
  }
}

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

TEST(RegistryTest, ListsBuiltinStrategiesInRegistrationOrder) {
  const std::vector<std::string> names =
      SchedulerRegistry::instance().names();
  const std::vector<std::string> expected = {
      "layer", "cpa", "mcpa", "cpr", "dp", "portfolio", "incremental"};
  EXPECT_EQ(names, expected);
  for (const std::string& name : expected) {
    EXPECT_TRUE(SchedulerRegistry::instance().contains(name)) << name;
  }
  EXPECT_FALSE(SchedulerRegistry::instance().contains("nope"));
}

TEST(RegistryTest, MakeConstructsTheNamedStrategy) {
  const arch::Machine m = machine();
  const cost::CostModel cost(m);
  for (const std::string& name : SchedulerRegistry::instance().names()) {
    const std::unique_ptr<Scheduler> s =
        SchedulerRegistry::instance().make(name, cost);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->name(), name);
  }
  EXPECT_THROW(SchedulerRegistry::instance().make("nope", cost),
               std::invalid_argument);
}

TEST(RegistryTest, EveryStrategyProducesAConsistentCanonicalSchedule) {
  const arch::Machine m = machine();
  const cost::CostModel cost(m);
  ode::SolverGraphSpec spec;
  spec.method = ode::Method::PAB;
  spec.n = 1 << 12;
  spec.stages = 4;
  spec.iterations = 2;
  const core::TaskGraph graph = spec.step_graph();
  for (const std::string& name : SchedulerRegistry::instance().names()) {
    const Schedule s =
        SchedulerRegistry::instance().make(name, cost)->run(graph, 16);
    EXPECT_FALSE(s.strategy.empty()) << name;
    EXPECT_EQ(s.total_cores(), 16) << name;
    EXPECT_GT(s.makespan(), 0.0) << name;
    ASSERT_EQ(s.allocation.size(),
              static_cast<std::size_t>(s.num_tasks()))
        << name;
    for (core::TaskId id = 0; id < s.num_tasks(); ++id) {
      EXPECT_EQ(s.task_width(id), static_cast<int>(s.task_cores(id).size()))
          << name << " task " << id;
    }
  }
}

}  // namespace
}  // namespace ptask::sched
