// Tests for data distributions and re-distribution plans.

#include <gtest/gtest.h>

#include <numeric>

#include "ptask/dist/distribution.hpp"
#include "ptask/dist/redistribution.hpp"

namespace ptask::dist {
namespace {

TEST(Distribution, BlockOwnership) {
  const Distribution d = Distribution::block();
  // 10 elements over 3 ranks: sizes 4, 3, 3.
  EXPECT_EQ(d.owner(0, 10, 3), 0u);
  EXPECT_EQ(d.owner(3, 10, 3), 0u);
  EXPECT_EQ(d.owner(4, 10, 3), 1u);
  EXPECT_EQ(d.owner(6, 10, 3), 1u);
  EXPECT_EQ(d.owner(7, 10, 3), 2u);
  EXPECT_EQ(d.owner(9, 10, 3), 2u);
  EXPECT_EQ(d.local_count(0, 10, 3), 4u);
  EXPECT_EQ(d.local_count(1, 10, 3), 3u);
  EXPECT_EQ(d.local_count(2, 10, 3), 3u);
}

TEST(Distribution, CyclicOwnership) {
  const Distribution d = Distribution::cyclic();
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_EQ(d.owner(i, 12, 4), i % 4);
  }
  EXPECT_EQ(d.local_count(0, 10, 4), 3u);
  EXPECT_EQ(d.local_count(1, 10, 4), 3u);
  EXPECT_EQ(d.local_count(2, 10, 4), 2u);
  EXPECT_EQ(d.local_count(3, 10, 4), 2u);
}

TEST(Distribution, BlockCyclicOwnership) {
  const Distribution d = Distribution::block_cyclic(2);
  // blocks: [0,1]->0, [2,3]->1, [4,5]->2, [6,7]->0, ...
  EXPECT_EQ(d.owner(0, 16, 3), 0u);
  EXPECT_EQ(d.owner(1, 16, 3), 0u);
  EXPECT_EQ(d.owner(2, 16, 3), 1u);
  EXPECT_EQ(d.owner(5, 16, 3), 2u);
  EXPECT_EQ(d.owner(6, 16, 3), 0u);
}

TEST(Distribution, ReplicatedHoldsEverythingEverywhere) {
  const Distribution d = Distribution::replicated();
  EXPECT_EQ(d.local_count(0, 100, 8), 100u);
  EXPECT_EQ(d.local_count(7, 100, 8), 100u);
  EXPECT_EQ(d.owner(42, 100, 8), 0u);  // canonical owner
}

TEST(Distribution, Equality) {
  EXPECT_EQ(Distribution::block(), Distribution::block());
  EXPECT_NE(Distribution::block(), Distribution::cyclic());
  EXPECT_EQ(Distribution::block_cyclic(4), Distribution::block_cyclic(4));
  EXPECT_NE(Distribution::block_cyclic(4), Distribution::block_cyclic(8));
}

TEST(Distribution, Validation) {
  EXPECT_THROW(Distribution::block_cyclic(0), std::invalid_argument);
  EXPECT_THROW(Distribution::block().owner(5, 5, 2), std::out_of_range);
  EXPECT_THROW(Distribution::block().owner(0, 5, 0), std::invalid_argument);
  EXPECT_THROW(Distribution::block().local_count(2, 5, 2), std::out_of_range);
}

TEST(Distribution, ToString) {
  EXPECT_EQ(Distribution::block().to_string(), "block");
  EXPECT_EQ(Distribution::block_cyclic(16).to_string(), "block-cyclic(16)");
}

// Ownership counts must always sum to n (a partition) for non-replicated
// distributions.
class OwnershipPartitionTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(OwnershipPartitionTest, LocalCountsPartitionTheVector) {
  const auto [n_int, q_int] = GetParam();
  const std::size_t n = static_cast<std::size_t>(n_int);
  const std::size_t q = static_cast<std::size_t>(q_int);
  for (const Distribution& d :
       {Distribution::block(), Distribution::cyclic(),
        Distribution::block_cyclic(3)}) {
    std::size_t total = 0;
    std::vector<std::size_t> counted(q, 0);
    for (std::size_t r = 0; r < q; ++r) total += d.local_count(r, n, q);
    EXPECT_EQ(total, n) << d.to_string();
    // owner() agrees with local_count().
    for (std::size_t i = 0; i < n; ++i) counted[d.owner(i, n, q)]++;
    for (std::size_t r = 0; r < q; ++r) {
      EXPECT_EQ(counted[r], d.local_count(r, n, q))
          << d.to_string() << " rank " << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, OwnershipPartitionTest,
    ::testing::Combine(::testing::Values(1, 7, 64, 100, 1023),
                       ::testing::Values(1, 2, 3, 8, 16)));

TEST(RedistributionPlan, IdenticalLayoutIsFree) {
  const RedistributionPlan plan = RedistributionPlan::compute(
      1000, 8, Distribution::block(), 4, Distribution::block(), 4,
      /*same_groups=*/true);
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.total_bytes(), 0u);
}

TEST(RedistributionPlan, BlockToCyclicSameGroupMovesMostElements) {
  const std::size_t n = 16;
  const RedistributionPlan plan = RedistributionPlan::compute(
      n, 8, Distribution::block(), 4, Distribution::cyclic(), 4,
      /*same_groups=*/true);
  // Element i stays put iff block owner == cyclic owner; with n=16, q=4,
  // block owner = i/4, cyclic owner = i%4 -> fixed points i in {0,5,10,15}.
  EXPECT_EQ(plan.total_bytes(), (n - 4) * 8);
}

TEST(RedistributionPlan, VolumeConservation) {
  // Total bytes moved equals (elements not already in place) * elem size;
  // with disjoint groups everything moves.
  const std::size_t n = 1024;
  const RedistributionPlan plan = RedistributionPlan::compute(
      n, 8, Distribution::block(), 4, Distribution::block(), 8,
      /*same_groups=*/false);
  EXPECT_EQ(plan.total_bytes(), n * 8);
  // Per-destination totals must equal the destination's local counts.
  std::vector<std::size_t> per_dst(8, 0);
  for (const Transfer& t : plan.transfers()) per_dst[t.dst_rank] += t.bytes;
  for (std::size_t r = 0; r < 8; ++r) {
    EXPECT_EQ(per_dst[r], Distribution::block().local_count(r, n, 8) * 8);
  }
}

TEST(RedistributionPlan, ReplicatedDestinationBroadcastsEverything) {
  const std::size_t n = 100;
  const RedistributionPlan plan = RedistributionPlan::compute(
      n, 8, Distribution::block(), 2, Distribution::replicated(), 3,
      /*same_groups=*/false);
  // Every destination rank needs all n elements.
  std::vector<std::size_t> per_dst(3, 0);
  for (const Transfer& t : plan.transfers()) per_dst[t.dst_rank] += t.bytes;
  for (std::size_t r = 0; r < 3; ++r) EXPECT_EQ(per_dst[r], n * 8);
}

TEST(RedistributionPlan, ReplicatedToReplicatedSameGroupIsFree) {
  const RedistributionPlan plan = RedistributionPlan::compute(
      100, 8, Distribution::replicated(), 4, Distribution::replicated(), 4,
      /*same_groups=*/true);
  EXPECT_TRUE(plan.empty());
}

TEST(RedistributionPlan, MaxPairBoundsTotal) {
  const RedistributionPlan plan = RedistributionPlan::compute(
      777, 8, Distribution::cyclic(), 3, Distribution::block(), 5, false);
  EXPECT_GE(plan.max_pair_bytes(), plan.total_bytes() / (3 * 5));
  EXPECT_LE(plan.max_pair_bytes(), plan.total_bytes());
}

TEST(RedistributionPlan, Validation) {
  EXPECT_THROW(RedistributionPlan::compute(10, 8, Distribution::block(), 0,
                                           Distribution::block(), 2, false),
               std::invalid_argument);
  EXPECT_THROW(RedistributionPlan::compute(10, 8, Distribution::block(), 2,
                                           Distribution::block(), 3, true),
               std::invalid_argument);
  EXPECT_TRUE(RedistributionPlan::compute(0, 8, Distribution::block(), 2,
                                          Distribution::block(), 3, false)
                  .empty());
}

}  // namespace
}  // namespace ptask::dist
